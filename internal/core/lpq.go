package core

import (
	"sort"
	"sync"

	"allnn/internal/index"
)

// lpqItem is one candidate entry from I_S queued inside an LPQ, together
// with its squared MIND (lower bound) and MAXD (pruning metric upper
// bound) relative to the LPQ's owner.
type lpqItem struct {
	e    *index.Entry
	mind float64
	maxd float64
}

// lpq is the paper's Local Priority Queue: every unique entry of I_R owns
// exactly one, holding the surviving candidate entries of I_S ordered by
// MIND (ties broken by MAXD, as the Filter Stage prescribes).
//
// The queue is a sorted slice rather than a binary heap: LPQs stay small
// (the bound keeps them to a handful of entries), insertion keeps them
// ordered, and the Filter Stage becomes a single tail truncation — every
// entry past the first one with MIND > bound is discarded in O(1).
//
// The pruning bound (LPQ.MAXD of the paper) is min(inherited bound,
// bound derived from the *current* members): every live member roots a
// distinct subtree guaranteeing at least one point within its MAXD, and
// the inherited bound stays valid for the child owner by Lemma 3.2. As
// in the paper, the member-derived part loosens when entries are
// dequeued — which is precisely where a loose metric (MAXMAXDIST) keeps
// hurting while NXNDIST does not.
//
// By default the bound is additionally folded with min over time (sound
// because the true k-NN distance is a data property, so any bound value
// once valid stays valid); Options.VolatileBounds disables the fold to
// reproduce the paper's literal behaviour.
type lpq struct {
	owner *index.Entry
	items []lpqItem
	head  int // dequeue position within items

	// inherited is the parent LPQ's bound at creation time; it remains a
	// valid floor for the member-derived bound.
	inherited float64
	// cached is the current bound value; dirty marks it for lazy
	// recomputation after a dequeue.
	cached   float64
	dirty    bool
	monotone bool
	k        int
	kb       KBound
	// shrink is the approximate mode's per-layer bound multiplier
	// (Options.approxShrink); exactly 1 for exact queries, where
	// admitBound degenerates to slackBound with no extra float ops.
	shrink float64
	// scratch is reused by the k-th smallest MAXD selection (k > 1).
	scratch []float64
	stats   *Stats
}

// lpqPool recycles LPQ structs together with their items/scratch backing
// arrays. An ANN run creates one LPQ per I_R entry (millions at paper
// scale) but only O(height x fanout) are ever live at once under the
// depth-first traversal, so pooling turns the dominant engine allocation
// into a constant number of live objects per worker.
var lpqPool = sync.Pool{New: func() any { return new(lpq) }}

// newLPQ creates an LPQ for owner with an inherited bound (Lemma 3.2
// makes the parent's bound valid for the child owner).
func newLPQ(owner *index.Entry, inherited float64, k int, kb KBound, monotone bool, shrink float64, stats *Stats) *lpq {
	stats.LPQsCreated++
	q := lpqPool.Get().(*lpq)
	*q = lpq{
		owner:     owner,
		items:     q.items[:0],
		inherited: inherited,
		cached:    inherited,
		monotone:  monotone,
		k:         k,
		kb:        kb,
		shrink:    shrink,
		scratch:   q.scratch[:0],
		stats:     stats,
	}
	return q
}

// releaseLPQ returns a fully drained LPQ to the pool. The caller must not
// touch q afterwards. Entry pointers held by the retained items backing
// array are cleared so the pool does not pin evicted cache slices.
func releaseLPQ(q *lpq) {
	clearLPQ(q)
	lpqPool.Put(q)
}

func clearLPQ(q *lpq) {
	items := q.items[:cap(q.items)]
	for i := range items {
		items[i].e = nil
	}
	q.owner = nil
	q.stats = nil
}

// lpqFreeListCap bounds each engine's private LPQ freelist. The
// depth-first traversal keeps O(height x fanout) queues live, so a small
// worker-local list absorbs nearly every create/release pair without
// touching the shared sync.Pool (whose Get/Put are per-P atomics —
// measurable in the leaf join, where LPQs recycle once per I_R object).
const lpqFreeListCap = 64

// getLPQ is newLPQ through the engine's private freelist.
func (e *engine) getLPQ(owner *index.Entry, inherited float64, k int, kb KBound, monotone bool) *lpq {
	if n := len(e.lpqFree); n > 0 {
		q := e.lpqFree[n-1]
		e.lpqFree[n-1] = nil
		e.lpqFree = e.lpqFree[:n-1]
		e.stats.LPQsCreated++
		*q = lpq{
			owner:     owner,
			items:     q.items[:0],
			inherited: inherited,
			cached:    inherited,
			monotone:  monotone,
			k:         k,
			kb:        kb,
			shrink:    e.shrink,
			scratch:   q.scratch[:0],
			stats:     e.stats,
		}
		return q
	}
	return newLPQ(owner, inherited, k, kb, monotone, e.shrink, e.stats)
}

// putLPQ is releaseLPQ through the engine's private freelist.
func (e *engine) putLPQ(q *lpq) {
	clearLPQ(q)
	if len(e.lpqFree) < lpqFreeListCap {
		e.lpqFree = append(e.lpqFree, q)
		return
	}
	lpqPool.Put(q)
}

// bound returns the current pruning upper bound, recomputing it after
// structural changes.
func (q *lpq) bound() float64 {
	if q.dirty {
		q.recomputeBound()
	}
	return q.cached
}

// recomputeBound derives the bound from the live members and the
// inherited floor.
func (q *lpq) recomputeBound() {
	q.dirty = false
	members := q.items[q.head:]
	memberBound := infinity
	switch {
	case q.k == 1:
		for i := range members {
			if members[i].maxd < memberBound {
				memberBound = members[i].maxd
			}
		}
	case q.kb == KBoundMaxAll:
		// Paper formulation: with >= k members, the largest MAXD bounds
		// the k-th NN distance (each member guarantees one point).
		if len(members) >= q.k {
			memberBound = members[0].maxd
			for i := 1; i < len(members); i++ {
				if members[i].maxd > memberBound {
					memberBound = members[i].maxd
				}
			}
		}
	default: // KBoundKth
		// Tighter: the k-th smallest MAXD among the members, selected
		// with a size-k max-heap. The rebuilt heap stays live so later
		// enqueues (until the next dequeue) update it incrementally.
		q.scratch = q.scratch[:0]
		for i := range members {
			v := members[i].maxd
			if len(q.scratch) < q.k {
				heapPushMax(&q.scratch, v)
			} else if v < q.scratch[0] {
				heapReplaceMax(q.scratch, v)
			}
		}
		if len(q.scratch) == q.k {
			memberBound = q.scratch[0]
		}
	}
	bound := q.inherited
	if memberBound < bound {
		bound = memberBound
	}
	if q.monotone && q.cached < bound {
		// cached still holds the previous (tighter) bound; keep it.
		return
	}
	q.cached = bound
}

// len returns the number of queued (not yet dequeued) entries.
func (q *lpq) len() int { return len(q.items) - q.head }

// enqueue inserts a candidate unless the bound prunes it, updates the
// bound, and applies the Filter Stage truncation.
func (q *lpq) enqueue(it lpqItem) {
	if it.mind > q.admitBound() {
		q.stats.PrunedOnProbe++
		return
	}
	q.enqueueChecked(it)
}

// enqueueChecked inserts a candidate whose MIND the caller has already
// tested against the bound.
func (q *lpq) enqueueChecked(it lpqItem) {
	// Insert in (mind, maxd) order among the live items.
	live := q.items[q.head:]
	pos := sort.Search(len(live), func(i int) bool {
		if live[i].mind != it.mind {
			return live[i].mind > it.mind
		}
		return live[i].maxd > it.maxd
	})
	q.items = append(q.items, lpqItem{})
	copy(q.items[q.head+pos+1:], q.items[q.head+pos:])
	q.items[q.head+pos] = it
	q.stats.Enqueued++

	// A new member can only tighten the bound: fold it in incrementally
	// when the cache is clean, recompute lazily otherwise.
	if q.dirty {
		// recomputeBound will see the new member.
	} else if q.k == 1 {
		if it.maxd < q.cached {
			q.cached = it.maxd
		}
	} else if q.kb == KBoundMaxAll {
		if it.maxd < q.cached {
			q.dirty = true
		}
	} else {
		// KBoundKth: while no dequeue intervenes, the member set only
		// grows, so the size-k max-heap over member MAXDs stays valid and
		// absorbs the new value in O(log k) — no full rebuild.
		if len(q.scratch) < q.k {
			heapPushMax(&q.scratch, it.maxd)
		} else if it.maxd < q.scratch[0] {
			heapReplaceMax(q.scratch, it.maxd)
		}
		if len(q.scratch) == q.k && q.scratch[0] < q.cached {
			q.cached = q.scratch[0]
		}
	}
	q.filter()
}

// boundSlack is the relative tolerance applied when comparing a MIND
// against the pruning bound. The metric (e.g. NXNDIST^2 computed as
// S - MAXDIST^2 + MAXMIN^2) and an exact squared point distance follow
// different floating-point paths; at geometrically tight configurations
// the guaranteed point can land an ulp beyond the bound. The slack keeps
// such boundary candidates alive; it is orders of magnitude below any
// distance difference that matters.
const boundSlack = 1e-12

// slackBound returns the pruning bound inflated by the relative slack.
func (q *lpq) slackBound() float64 {
	b := q.bound()
	return b + b*boundSlack
}

// admitBound is the admission-side pruning bound: slackBound shrunk by
// the approximate mode's factor. Shrinking is applied only when the
// queue already holds at least k members, so an LPQ can always admit
// enough candidates to produce k results (the non-starvation guard: an
// approximate rejection never removes queued members, and while fewer
// than k are queued admission stays exact). filter() deliberately keeps
// the exact slackBound — truncating queued members with a shrunk bound
// could evict the very members the bound derives from.
func (q *lpq) admitBound() float64 {
	b := q.slackBound()
	if q.shrink != 1 && q.len() >= q.k {
		b *= q.shrink
	}
	return b
}

// filter is the Filter Stage: the live items are sorted by MIND, so all
// items past the first with MIND > bound can be dropped together. The
// bound contributors themselves always survive (their MIND is at most
// their MAXD, which is at most the bound), so truncation never loosens
// the bound.
func (q *lpq) filter() {
	live := q.items[q.head:]
	bound := q.slackBound()
	cut := sort.Search(len(live), func(i int) bool { return live[i].mind > bound })
	if cut < len(live) {
		q.stats.PrunedByFilter += uint64(len(live) - cut)
		q.items = q.items[:q.head+cut]
	}
}

// dequeue pops the smallest-MIND entry. Removing a member can loosen the
// member-derived part of the bound, so the cache goes dirty.
func (q *lpq) dequeue() (lpqItem, bool) {
	if q.head >= len(q.items) {
		return lpqItem{}, false
	}
	it := q.items[q.head]
	q.head++
	q.dirty = true
	return it, true
}

// --- tiny max-heap over float64 (k-th smallest tracker) ---------------------

func heapPushMax(h *[]float64, v float64) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] >= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func heapReplaceMax(h []float64, v float64) {
	h[0] = v
	i := 0
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r] > h[child] {
			child = r
		}
		if h[i] >= h[child] {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}
