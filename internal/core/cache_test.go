package core

import (
	"math/rand"
	"reflect"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// stripCacheCounters zeroes the cache counters so runs with different
// cache configurations can be compared on their traversal counters alone.
func stripCacheCounters(s Stats) Stats {
	s.NodeCacheHits = 0
	s.NodeCacheMisses = 0
	return s
}

// TestNodeCacheTraversalInvariance is the central soundness property of
// the decoded-node cache: it may change the cost of an execution, never
// its traversal. Results and every probe/expansion counter must be
// identical between cache-off, cold-cache and warm-cache runs.
func TestNodeCacheTraversalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rPts := clusteredPoints(rng, 700, 2, 100)
	sPts := uniformPoints(rng, 600, 2, 100)
	builders := []struct {
		name  string
		build func(testing.TB, []geom.Point) index.Tree
	}{
		{"mbrqt", buildMBRQT},
		{"rstar", buildRStar},
	}
	for _, b := range builders {
		for _, k := range []int{1, 3} {
			ir, is := b.build(t, rPts), b.build(t, sPts)
			off := Options{K: k, NodeCacheBytes: NodeCacheDisabled}
			wantRes, wantStats, err := Collect(ir, is, off)
			if err != nil {
				t.Fatal(err)
			}
			if wantStats.NodeCacheHits != 0 || wantStats.NodeCacheMisses != 0 {
				t.Fatalf("%s/k=%d: disabled cache reports lookups: %+v", b.name, k, wantStats)
			}
			if nc, ok := ir.(index.NodeCacher); ok && nc.NodeCacheRef() != nil {
				t.Fatalf("%s: NodeCacheBytes < 0 left a cache attached", b.name)
			}
			for _, pass := range []string{"cold", "warm"} {
				on := Options{K: k}
				gotRes, gotStats, err := Collect(ir, is, on)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("%s/k=%d/%s: cached results differ from cache-off", b.name, k, pass)
				}
				if stripCacheCounters(gotStats) != stripCacheCounters(wantStats) {
					t.Fatalf("%s/k=%d/%s: traversal counters changed: %+v vs %+v",
						b.name, k, pass, gotStats, wantStats)
				}
				if gotStats.NodeCacheHits+gotStats.NodeCacheMisses == 0 {
					t.Fatalf("%s/k=%d/%s: cache enabled but no lookups recorded", b.name, k, pass)
				}
				if pass == "warm" && gotStats.NodeCacheMisses != 0 {
					t.Fatalf("%s/k=%d: warm run still misses: %+v", b.name, k, gotStats)
				}
			}
		}
	}
}

// TestWarmExpandAllocationFree verifies the headline property: expanding
// a cache-resident node allocates nothing, for both index kinds.
func TestWarmExpandAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := uniformPoints(rng, 2000, 2, 100)
	for _, b := range []struct {
		name  string
		build func(testing.TB, []geom.Point) index.Tree
	}{
		{"mbrqt", buildMBRQT},
		{"rstar", buildRStar},
	} {
		tree := b.build(t, pts)
		tree.(index.NodeCacher).SetNodeCache(index.NewNodeCache(0))
		root, err := tree.Root()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tree.Expand(&root); err != nil { // warm the root
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := tree.Expand(&root); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm Expand performs %.1f allocs/op, want 0", b.name, allocs)
		}
	}
}

// TestNodeCacheSurvivesAcrossRuns checks that Run keeps a tree's cache
// (and its contents) when the budget is unchanged, and replaces it when
// the budget changes.
func TestNodeCacheSurvivesAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tree := buildMBRQT(t, uniformPoints(rng, 500, 2, 100))
	if _, _, err := Collect(tree, tree, Options{ExcludeSelf: true}); err != nil {
		t.Fatal(err)
	}
	first := tree.(index.NodeCacher).NodeCacheRef()
	if first == nil {
		t.Fatal("default options did not attach a cache")
	}
	if _, _, err := Collect(tree, tree, Options{ExcludeSelf: true}); err != nil {
		t.Fatal(err)
	}
	if tree.(index.NodeCacher).NodeCacheRef() != first {
		t.Fatal("unchanged budget replaced the cache")
	}
	if _, _, err := Collect(tree, tree, Options{ExcludeSelf: true, NodeCacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if c := tree.(index.NodeCacher).NodeCacheRef(); c == first || c.Cap() != 1<<20 {
		t.Fatalf("budget change did not rebuild the cache (cap %d)", c.Cap())
	}
}

// mutableTree is the subset of index.Tree plus the mutation entry points
// shared by both index implementations.
type mutableTree interface {
	index.Tree
	Insert(index.ObjectID, geom.Point) error
}

// TestNodeCacheInvalidationOnMutation interleaves queries with inserts
// (and deletes, for the R*-tree) on a warm cache and cross-checks every
// query against a cache-free run over the same tree. Stale decoded nodes
// would surface as diverging results.
func TestNodeCacheInvalidationOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := uniformPoints(rng, 400, 2, 100)
	// Keep the extra points strictly inside the base MBR: the MBRQT root
	// cell is fixed at bulk-load time and rejects outside points.
	extra := uniformPoints(rng, 200, 2, 90)
	for _, p := range extra {
		for d := range p {
			p[d] += 5
		}
	}

	check := func(name string, tree index.Tree) {
		cached, _, err := Collect(tree, tree, Options{ExcludeSelf: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plain, _, err := Collect(tree, tree, Options{ExcludeSelf: true, NodeCacheBytes: NodeCacheDisabled})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cached, plain) {
			t.Fatalf("%s: cached results diverge from cache-free results after mutation", name)
		}
	}

	t.Run("mbrqt-insert", func(t *testing.T) {
		tree := buildMBRQT(t, base).(mutableTree)
		check("initial", tree)
		for i, p := range extra {
			if err := tree.Insert(index.ObjectID(1000+i), p); err != nil {
				t.Fatal(err)
			}
			if i%50 == 49 {
				check("after insert batch", tree)
			}
		}
		check("final", tree)
	})

	t.Run("rstar-insert-delete", func(t *testing.T) {
		tree := buildRStar(t, base).(interface {
			mutableTree
			Delete(index.ObjectID, geom.Point) (bool, error)
		})
		check("initial", tree)
		for i, p := range extra {
			if err := tree.Insert(index.ObjectID(1000+i), p); err != nil {
				t.Fatal(err)
			}
		}
		check("after inserts", tree)
		for i, p := range extra[:100] {
			ok, err := tree.Delete(index.ObjectID(1000+i), p)
			if err != nil || !ok {
				t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
			}
			if i%25 == 24 {
				check("after delete batch", tree)
			}
		}
		check("final", tree)
	})
}
