package core

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/bruteforce"
	"allnn/internal/geom"
	"allnn/internal/index"
)

// hashRun executes the engine and hashes the emitted stream (object ids,
// neighbor ids, distance bits, in emission order), so two runs can be
// compared for byte-identical output.
func hashRun(t *testing.T, ir, is index.Tree, opts Options) (uint64, Stats) {
	t.Helper()
	h := fnv.New64a()
	var word [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	stats, err := Run(ir, is, opts, func(r Result) error {
		write(uint64(r.Object))
		for _, n := range r.Neighbors {
			write(uint64(n.Object))
			write(math.Float64bits(n.Dist))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return h.Sum64(), stats
}

// normCache folds the node-cache hit/miss split into its total: which
// tier serves a fetch depends on cache residency and sharding (runs on a
// shared index warm it, parallel runs re-shard it), while the total is a
// pure function of the traversal — the invariant these tests compare.
func normCache(s Stats) Stats {
	s.NodeCacheHits += s.NodeCacheMisses
	s.NodeCacheMisses = 0
	return s
}

// approxDatasets is the shared property-test matrix: uniform and
// clustered self-join datasets across dims 2, 3 and 7.
func approxDatasets(rng *rand.Rand, n int) map[string][]geom.Point {
	out := map[string][]geom.Point{}
	for _, dim := range []int{2, 3, 7} {
		out["uniform/"+string('0'+rune(dim))+"d"] = uniformPoints(rng, n, dim, 100)
		out["clustered/"+string('0'+rune(dim))+"d"] = clusteredPoints(rng, n, dim, 100)
	}
	return out
}

// TestApproxZeroEpsilonByteIdentical pins the ε=0 contract: explicitly
// setting Epsilon to 0 (and RecallTarget to 0 or 1, both of which mean
// "exact") must produce output byte-identical to the plain exact run —
// including every engine counter — serially and at parallelism 4.
func TestApproxZeroEpsilonByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1401))
	for name, pts := range approxDatasets(rng, 500) {
		t.Run(name, func(t *testing.T) {
			ix := buildMBRQT(t, pts)
			base := Options{K: 3, ExcludeSelf: true}
			wantHash, wantStats := hashRun(t, ix, ix, base)

			for _, tc := range []struct {
				label string
				opts  Options
			}{
				{"eps0", Options{K: 3, ExcludeSelf: true, Epsilon: 0}},
				{"eps0/rt1", Options{K: 3, ExcludeSelf: true, Epsilon: 0, RecallTarget: 1}},
				{"eps0/parallel4", Options{K: 3, ExcludeSelf: true, Epsilon: 0, Parallelism: 4, OrderedEmit: true}},
			} {
				gotHash, gotStats := hashRun(t, ix, ix, tc.opts)
				if gotHash != wantHash {
					t.Errorf("%s: output differs from exact run", tc.label)
				}
				if normCache(gotStats) != normCache(wantStats) {
					t.Errorf("%s: stats differ from exact run:\n got %+v\nwant %+v", tc.label, gotStats, wantStats)
				}
				if gotStats.LPQEarlyTerms != 0 {
					t.Errorf("%s: exact run recorded %d approx early terminations", tc.label, gotStats.LPQEarlyTerms)
				}
			}
		})
	}
}

// TestApproxContract checks the (1+ε) guarantee against brute force: at
// every ε each returned neighbor distance is within (1+ε) of the true
// distance at its rank, and no query object ever receives fewer
// neighbors than the exact run would produce (non-starvation).
func TestApproxContract(t *testing.T) {
	rng := rand.New(rand.NewSource(1402))
	for name, pts := range approxDatasets(rng, 400) {
		t.Run(name, func(t *testing.T) {
			ix := buildMBRQT(t, pts)
			want := bruteforce.AkNN(bruteforce.FromPoints(pts), bruteforce.FromPoints(pts), 3, true)
			for _, eps := range []float64{1e-12, 0.05, 0.2, 1.0, 10} {
				got, _, err := Collect(ix, ix, Options{K: 3, ExcludeSelf: true, Epsilon: eps})
				if err != nil {
					t.Fatalf("eps=%g: %v", eps, err)
				}
				if len(got) != len(want) {
					t.Fatalf("eps=%g: %d results, want %d", eps, len(got), len(want))
				}
				sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
				limit := (1 + eps) * (1 + 1e-9)
				for i := range want {
					g, w := got[i], want[i]
					if g.Object != w.Object {
						t.Fatalf("eps=%g: result %d is for object %d, want %d", eps, i, g.Object, w.Object)
					}
					if len(g.Neighbors) != len(w.Neighbors) {
						t.Fatalf("eps=%g: object %d got %d neighbors, want %d (starved)",
							eps, g.Object, len(g.Neighbors), len(w.Neighbors))
					}
					for n := range w.Neighbors {
						if g.Neighbors[n].Dist > w.Neighbors[n].Dist*limit {
							t.Fatalf("eps=%g: object %d rank %d dist %g breaks the contract vs true %g",
								eps, g.Object, n, g.Neighbors[n].Dist, w.Neighbors[n].Dist)
						}
					}
				}
			}
		})
	}
}

// measuredRecall computes distance-based recall: a returned neighbor at
// rank n counts as correct when its distance is no farther than the true
// rank-n distance (up to float tolerance), which is tie-insensitive.
func measuredRecall(got []Result, want []bruteforce.Result) float64 {
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	hits, total := 0, 0
	for i := range want {
		for n := range want[i].Neighbors {
			total++
			if n < len(got[i].Neighbors) && got[i].Neighbors[n].Dist <= want[i].Neighbors[n].Dist*(1+1e-9) {
				hits++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}

// TestApproxRecallTarget checks the recall-targeted leaf selector: at
// ε=0 with RecallTarget rt, measured recall must be at least rt (the
// per-leaf floor implies the global one), and every object still
// receives its full k neighbors.
func TestApproxRecallTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1403))
	for name, pts := range approxDatasets(rng, 500) {
		t.Run(name, func(t *testing.T) {
			ix := buildMBRQT(t, pts)
			want := bruteforce.AkNN(bruteforce.FromPoints(pts), bruteforce.FromPoints(pts), 2, true)
			for _, rt := range []float64{0.5, 0.8, 0.95} {
				got, _, err := Collect(ix, ix, Options{K: 2, ExcludeSelf: true, RecallTarget: rt})
				if err != nil {
					t.Fatalf("rt=%g: %v", rt, err)
				}
				for _, g := range got {
					if len(g.Neighbors) != 2 {
						t.Fatalf("rt=%g: object %d got %d neighbors, want 2", rt, g.Object, len(g.Neighbors))
					}
				}
				if rec := measuredRecall(got, want); rec < rt {
					t.Errorf("rt=%g: measured recall %.4f below target", rt, rec)
				}
			}
		})
	}
}

// TestApproxSerialParallelParity checks that approximate decisions are
// deterministic functions of the bounds: an ε>0 ordered parallel run is
// byte-identical to the ε>0 serial run, with identical engine Stats
// (including the new prune counters).
func TestApproxSerialParallelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1404))
	for name, pts := range approxDatasets(rng, 600) {
		t.Run(name, func(t *testing.T) {
			ix := buildMBRQT(t, pts)
			for _, opts := range []Options{
				{K: 2, ExcludeSelf: true, Epsilon: 0.3},
				{K: 2, ExcludeSelf: true, Epsilon: 0.1, RecallTarget: 0.9},
			} {
				serialHash, serialStats := hashRun(t, ix, ix, opts)
				par := opts
				par.Parallelism = 4
				par.OrderedEmit = true
				parHash, parStats := hashRun(t, ix, ix, par)
				if parHash != serialHash {
					t.Errorf("eps=%g rt=%g: parallel output differs from serial", opts.Epsilon, opts.RecallTarget)
				}
				if normCache(parStats) != normCache(serialStats) {
					t.Errorf("eps=%g rt=%g: parallel stats differ:\n got %+v\nwant %+v",
						opts.Epsilon, opts.RecallTarget, parStats, serialStats)
				}
			}
		})
	}
}

// TestApproxPruneCountersVisible checks that ε actually moves the new
// counters: a coarse approximation must record approx-attributable LPQ
// early terminations and no more distance computations than exact.
func TestApproxPruneCountersVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(1405))
	pts := clusteredPoints(rng, 1500, 3, 100)
	ix := buildMBRQT(t, pts)
	_, exact := hashRun(t, ix, ix, Options{K: 2, ExcludeSelf: true})
	_, approx := hashRun(t, ix, ix, Options{K: 2, ExcludeSelf: true, Epsilon: 1.0})
	if approx.LPQEarlyTerms == 0 {
		t.Error("eps=1.0 recorded no LPQ early terminations")
	}
	if approx.DistanceCalcs >= exact.DistanceCalcs {
		t.Errorf("eps=1.0 computed %d distances, exact %d — approximation saved nothing",
			approx.DistanceCalcs, exact.DistanceCalcs)
	}
	if exact.PrunedSubtrees == 0 {
		t.Error("exact run recorded no terminal-cut subtree discards (counter dead)")
	}
	if exact.LPQEarlyTerms != 0 {
		t.Errorf("exact run recorded %d approx early terminations", exact.LPQEarlyTerms)
	}
}

// TestBoundSeedExact pins the BoundSeedSq contract: seeding every
// object's LPQ with its true k-th neighbor distance (a valid upper
// bound, from brute force) must leave the output byte-identical to the
// unseeded exact run — serially and at parallelism 4 — while never
// increasing the distance-computation count. This is the verification
// pass of a pilot/verify pipeline in its best case.
func TestBoundSeedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1407))
	for name, pts := range approxDatasets(rng, 500) {
		t.Run(name, func(t *testing.T) {
			ix := buildMBRQT(t, pts)
			base := Options{K: 3, ExcludeSelf: true}
			wantHash, wantStats := hashRun(t, ix, ix, base)

			want := bruteforce.AkNN(bruteforce.FromPoints(pts), bruteforce.FromPoints(pts), 3, true)
			seeds := make([]float64, len(pts))
			for _, r := range want {
				d := r.Neighbors[len(r.Neighbors)-1].Dist
				seeds[r.Object] = d * d * (1 + 1e-9)
			}

			seeded := base
			seeded.BoundSeedSq = seeds
			gotHash, gotStats := hashRun(t, ix, ix, seeded)
			if gotHash != wantHash {
				t.Error("seeded run output differs from exact run")
			}
			if gotStats.DistanceCalcs > wantStats.DistanceCalcs {
				t.Errorf("seeded run computed %d distances, unseeded %d — seeds added work",
					gotStats.DistanceCalcs, wantStats.DistanceCalcs)
			}

			par := seeded
			par.Parallelism = 4
			par.OrderedEmit = true
			parHash, _ := hashRun(t, ix, ix, par)
			if parHash != wantHash {
				t.Error("seeded parallel run output differs from exact run")
			}
		})
	}
}

// TestApproxValidation checks the typed rejection of invalid knobs.
func TestApproxValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1406))
	pts := uniformPoints(rng, 50, 2, 10)
	ix := buildMBRQT(t, pts)
	bad := []Options{
		{Epsilon: -0.1},
		{Epsilon: math.NaN()},
		{Epsilon: math.Inf(1)},
		{RecallTarget: -0.5},
		{RecallTarget: 1.5},
		{RecallTarget: math.NaN()},
		{RecallTarget: 0.9, PerObjectGather: true},
	}
	for _, opts := range bad {
		opts.K = 1
		opts.ExcludeSelf = true
		_, _, err := Collect(ix, ix, opts)
		if err == nil {
			t.Errorf("options %+v accepted", opts)
			continue
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("options %+v rejected with untyped error %v", opts, err)
		}
	}
	// Valid edge values must be accepted.
	for _, opts := range []Options{
		{K: 1, ExcludeSelf: true, Epsilon: 0},
		{K: 1, ExcludeSelf: true, RecallTarget: 1, PerObjectGather: true},
		{K: 1, ExcludeSelf: true, RecallTarget: 0.5},
	} {
		if _, _, err := Collect(ix, ix, opts); err != nil {
			t.Errorf("options %+v rejected: %v", opts, err)
		}
	}
}
