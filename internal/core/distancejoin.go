package core

import (
	"context"
	"fmt"
	"math"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// Pair is one result of a distance join: two objects within the query
// distance of each other.
type Pair struct {
	R, S   index.ObjectID
	RPoint geom.Point
	SPoint geom.Point
	Dist   float64
}

// DistanceJoin reports every pair (r, s), r from ir and s from is, with
// Euclidean distance at most d (the Distance Join of Hjaltason & Samet,
// Section 2 of the paper — the operation ANN methods are most closely
// related to). It uses the same synchronized bi-directional traversal as
// the ANN engine, pruning subtree pairs whose MINMINDIST exceeds d.
//
// When excludeSelf is set, pairs with equal ObjectIDs are skipped (use
// for self-joins).
func DistanceJoin(ir, is index.Tree, d float64, excludeSelf bool, emit func(Pair) error) (Stats, error) {
	return DistanceJoinContext(context.Background(), ir, is, d, excludeSelf, emit)
}

// DistanceJoinContext is DistanceJoin with cancellation: when ctx is
// cancelled or its deadline passes, the traversal stops at the next node
// expansion and returns ctx.Err() alongside the stats gathered so far
// (emit is not called again after the cancellation is observed). A
// context that can never be cancelled costs nothing — see RunContext.
func DistanceJoinContext(ctx context.Context, ir, is index.Tree, d float64, excludeSelf bool, emit func(Pair) error) (Stats, error) {
	var stats Stats
	if ir.Dim() != is.Dim() {
		return stats, fmt.Errorf("core: index dimensionality mismatch: %d vs %d", ir.Dim(), is.Dim())
	}
	if d < 0 {
		return stats, fmt.Errorf("core: negative join distance %g", d)
	}
	cancelled, disarm, err := armCancel(ctx)
	if err != nil {
		return stats, err
	}
	defer disarm()
	rootR, err := ir.Root()
	if err != nil {
		return stats, err
	}
	rootS, err := is.Root()
	if err != nil {
		return stats, err
	}
	if rootR.Count == 0 || rootS.Count == 0 {
		return stats, nil
	}
	e := &engine{ir: ir, is: is, stats: &stats, ctx: ctx, cancelled: cancelled}
	return stats, e.joinPair(&rootR, &rootS, d*d, excludeSelf, emit)
}

// joinPair recursively expands the pair of subtrees, descending into the
// larger side first (classic distance-join heuristic: it shrinks the
// bounding boxes fastest).
func (e *engine) joinPair(r, s *index.Entry, distSq float64, excludeSelf bool, emit func(Pair) error) error {
	e.stats.DistanceCalcs++
	if geom.MinDistSq(r.MBR, s.MBR) > distSq {
		e.stats.PrunedOnProbe++
		return nil
	}
	if r.IsObject() && s.IsObject() {
		if excludeSelf && r.Object == s.Object {
			return nil
		}
		d := geom.DistSq(r.Point, s.Point)
		if d > distSq {
			return nil
		}
		e.stats.Results++
		return emit(Pair{
			R: r.Object, S: s.Object,
			RPoint: r.Point, SPoint: s.Point,
			Dist: math.Sqrt(d),
		})
	}
	// Expand the non-object side with the larger MBR margin. Each
	// expansion polls the cancellation flag, so an abort surfaces within
	// one node's worth of work.
	if err := e.checkCancel(); err != nil {
		return err
	}
	expandR := !r.IsObject() && (s.IsObject() || r.MBR.Margin() >= s.MBR.Margin())
	if expandR {
		children, err := e.ir.Expand(r)
		if err != nil {
			return err
		}
		e.stats.NodesExpandedR++
		for i := range children {
			if err := e.joinPair(&children[i], s, distSq, excludeSelf, emit); err != nil {
				return err
			}
		}
		return nil
	}
	children, err := e.is.Expand(s)
	if err != nil {
		return err
	}
	e.stats.NodesExpandedS++
	for i := range children {
		if err := e.joinPair(r, &children[i], distSq, excludeSelf, emit); err != nil {
			return err
		}
	}
	return nil
}
