package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
)

func bruteClosestPairs(r, s []geom.Point, k int, excludeSelf bool) []float64 {
	var ds []float64
	for i, p := range r {
		for j, q := range s {
			if excludeSelf && i == j {
				continue
			}
			ds = append(ds, geom.Dist(p, q))
		}
	}
	sort.Float64s(ds)
	if k < len(ds) {
		ds = ds[:k]
	}
	return ds
}

func TestKClosestPairsMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rPts := uniformPoints(rng, 150, 2, 100)
	sPts := uniformPoints(rng, 180, 2, 100)
	ir := buildMBRQT(t, rPts)
	is := buildRStar(t, sPts)
	for _, k := range []int{1, 5, 50} {
		got, _, err := KClosestPairs(ir, is, k, false)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteClosestPairs(rPts, sPts, k, false)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("k=%d pair %d: dist %g, want %g", k, i, got[i].Dist, want[i])
			}
			if math.Abs(geom.Dist(got[i].RPoint, got[i].SPoint)-got[i].Dist) > 1e-9 {
				t.Fatalf("pair %d: inconsistent reported distance", i)
			}
		}
	}
}

func TestKClosestPairsSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := clusteredPoints(rng, 200, 2, 100)
	ix := buildMBRQT(t, pts)
	got, _, err := KClosestPairs(ix, ix, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteClosestPairs(pts, pts, 10, true)
	for i := range want {
		if math.Abs(got[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d: dist %g, want %g", i, got[i].Dist, want[i])
		}
		if got[i].R == got[i].S {
			t.Fatalf("self pair (%d,%d) leaked", got[i].R, got[i].S)
		}
	}
}

func TestKClosestPairsKLargerThanAll(t *testing.T) {
	rPts := []geom.Point{{0, 0}, {1, 1}}
	sPts := []geom.Point{{2, 2}}
	ir := buildMBRQT(t, rPts)
	is := buildMBRQT(t, sPts)
	got, _, err := KClosestPairs(ir, is, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d pairs, want 2", len(got))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Dist < got[b].Dist }) {
		t.Fatal("pairs not sorted by distance")
	}
}

func TestKClosestPairsValidation(t *testing.T) {
	ir := buildMBRQT(t, []geom.Point{{1, 1}})
	is := buildMBRQT(t, []geom.Point{{1, 1, 1}})
	if _, _, err := KClosestPairs(ir, is, 1, false); err == nil {
		t.Fatal("expected dimensionality error")
	}
	is2 := buildMBRQT(t, []geom.Point{{2, 2}})
	if _, _, err := KClosestPairs(ir, is2, 0, false); err == nil {
		t.Fatal("expected error for k = 0")
	}
}
