package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// collectWith runs the engine and materialises results without sorting.
func collectWith(t *testing.T, ir, is index.Tree, opts Options) ([]Result, Stats) {
	t.Helper()
	got, stats, err := Collect(ir, is, opts)
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func sortByObject(rs []Result) {
	sort.Slice(rs, func(a, b int) bool { return rs[a].Object < rs[b].Object })
}

// normalizeCacheCounters folds the node-cache hit/miss split into a single
// lookup total. The split depends on cache warmth (a second run over the
// same tree hits where the first missed), but the total number of lookups
// is a pure function of the traversal and must be identical between
// equivalent runs.
func normalizeCacheCounters(s Stats) Stats {
	s.NodeCacheHits += s.NodeCacheMisses
	s.NodeCacheMisses = 0
	return s
}

// TestParallelMatchesSerial is the equivalence matrix the parallel
// executor must satisfy: for random datasets across both index kinds,
// both metrics, k in {1, 4} and Parallelism in {2, 8}, the parallel run
// must produce exactly the serial engine's results — identical order in
// ordered mode, identical set (after sorting by query id) in unordered
// mode — and identical work counters.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rPts := clusteredPoints(rng, 900, 2, 100)
	sPts := uniformPoints(rng, 700, 2, 100)
	builders := []struct {
		name  string
		build func(testing.TB, []geom.Point) index.Tree
	}{
		{"mbrqt", buildMBRQT},
		{"rstar", buildRStar},
	}
	for _, b := range builders {
		ir := b.build(t, rPts)
		is := b.build(t, sPts)
		for _, metric := range []Metric{NXNDist, MaxMaxDist} {
			for _, k := range []int{1, 4} {
				serialOpts := Options{K: k, Metric: metric}
				want, wantStats := collectWith(t, ir, is, serialOpts)
				for _, par := range []int{2, 8} {
					for _, ordered := range []bool{true, false} {
						name := fmt.Sprintf("%s/%s/k=%d/p=%d/ordered=%v",
							b.name, metric, k, par, ordered)
						t.Run(name, func(t *testing.T) {
							opts := serialOpts
							opts.Parallelism = par
							opts.OrderedEmit = ordered
							got, gotStats := collectWith(t, ir, is, opts)
							if !ordered {
								g := append([]Result(nil), got...)
								w := append([]Result(nil), want...)
								sortByObject(g)
								sortByObject(w)
								got, want := g, w
								if !reflect.DeepEqual(got, want) {
									t.Fatal("unordered parallel result set differs from serial")
								}
							} else if !reflect.DeepEqual(got, want) {
								t.Fatal("ordered parallel results differ from serial (order or content)")
							}
							if normalizeCacheCounters(gotStats) != normalizeCacheCounters(wantStats) {
								t.Fatalf("parallel stats %+v differ from serial %+v", gotStats, wantStats)
							}
						})
					}
				}
			}
		}
	}
}

// TestParallelSelfJoinExcludeSelf covers the self-AkNN form (same tree on
// both sides, ExcludeSelf) under parallel execution.
func TestParallelSelfJoinExcludeSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredPoints(rng, 800, 2, 50)
	for _, build := range []func(testing.TB, []geom.Point) index.Tree{buildMBRQT, buildRStar} {
		tree := build(t, pts)
		for _, k := range []int{1, 3} {
			serial := Options{K: k, ExcludeSelf: true}
			want, wantStats := collectWith(t, tree, tree, serial)
			par := serial
			par.Parallelism = 4
			par.OrderedEmit = true
			got, gotStats := collectWith(t, tree, tree, par)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: parallel self-join differs from serial", k)
			}
			if normalizeCacheCounters(gotStats) != normalizeCacheCounters(wantStats) {
				t.Fatalf("k=%d: stats %+v != %+v", k, gotStats, wantStats)
			}
		}
	}
}

// TestParallelHigherDim sanity-checks a non-2D dataset through the
// parallel path (the frontier and drain logic are dimension-generic but
// exercise different fanouts).
func TestParallelHigherDim(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rPts := uniformPoints(rng, 500, 4, 10)
	sPts := uniformPoints(rng, 500, 4, 10)
	ir, is := buildMBRQT(t, rPts), buildMBRQT(t, sPts)
	want, _ := collectWith(t, ir, is, Options{K: 2})
	got, _ := collectWith(t, ir, is, Options{K: 2, Parallelism: 6, OrderedEmit: true})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("4-D parallel results differ from serial")
	}
}

// TestParallelEmitError verifies that an error returned by the emit
// callback aborts a parallel run and propagates to the caller.
func TestParallelEmitError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := uniformPoints(rng, 600, 2, 100)
	tree := buildMBRQT(t, pts)
	sentinel := errors.New("stop here")
	for _, ordered := range []bool{true, false} {
		seen := 0
		_, err := Run(tree, tree, Options{Parallelism: 4, OrderedEmit: ordered, ExcludeSelf: true},
			func(Result) error {
				seen++
				if seen > 10 {
					return sentinel
				}
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("ordered=%v: err = %v, want sentinel", ordered, err)
		}
	}
}

// TestParallelTinyDataset exercises frontiers smaller than the worker
// count (single leaf, single object).
func TestParallelTinyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5} {
		pts := uniformPoints(rng, n, 2, 10)
		tree := buildMBRQT(t, pts)
		want, _ := collectWith(t, tree, tree, Options{})
		got, _ := collectWith(t, tree, tree, Options{Parallelism: 8, OrderedEmit: true})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel results differ from serial", n)
		}
	}
}

// TestParallelBreadthFirstRejected: the breadth-first traversal drains a
// single global queue, so requesting Parallelism > 1 with it is a
// configuration error rather than a silent serial run.
func TestParallelBreadthFirstRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := uniformPoints(rng, 400, 2, 100)
	tree := buildMBRQT(t, pts)
	// Plain BreadthFirst (Parallelism <= 1) still works.
	if _, _, err := Collect(tree, tree, Options{Traversal: BreadthFirst, ExcludeSelf: true}); err != nil {
		t.Fatal(err)
	}
	_, _, err := Collect(tree, tree, Options{Traversal: BreadthFirst, ExcludeSelf: true, Parallelism: 8})
	if err == nil {
		t.Fatal("BreadthFirst with Parallelism > 1 must be rejected")
	}
}
