package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
)

func bruteDistanceJoin(r, s []geom.Point, d float64, excludeSelf bool) [][2]int {
	var out [][2]int
	dd := d * d
	for i, p := range r {
		for j, q := range s {
			if excludeSelf && i == j {
				continue
			}
			if geom.DistSq(p, q) <= dd {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func checkJoin(t *testing.T, rPts, sPts []geom.Point, d float64, excludeSelf bool) {
	t.Helper()
	ir := buildMBRQT(t, rPts)
	is := buildRStar(t, sPts)
	var got [][2]int
	_, err := DistanceJoin(ir, is, d, excludeSelf, func(p Pair) error {
		got = append(got, [2]int{int(p.R), int(p.S)})
		if math.Abs(geom.Dist(p.RPoint, p.SPoint)-p.Dist) > 1e-9 {
			t.Fatalf("pair (%d,%d): reported dist %g, actual %g", p.R, p.S, p.Dist, geom.Dist(p.RPoint, p.SPoint))
		}
		if p.Dist > d+1e-9 {
			t.Fatalf("pair (%d,%d) at dist %g exceeds join distance %g", p.R, p.S, p.Dist, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteDistanceJoin(rPts, sPts, d, excludeSelf)
	sortPairs := func(ps [][2]int) {
		sort.Slice(ps, func(a, b int) bool {
			if ps[a][0] != ps[b][0] {
				return ps[a][0] < ps[b][0]
			}
			return ps[a][1] < ps[b][1]
		})
	}
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, brute force %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDistanceJoinMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, dim := range []int{2, 3} {
		rPts := uniformPoints(rng, 150, dim, 100)
		sPts := uniformPoints(rng, 150, dim, 100)
		for _, d := range []float64{0.5, 5, 20} {
			checkJoin(t, rPts, sPts, d, false)
		}
	}
}

func TestDistanceJoinSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := clusteredPoints(rng, 200, 2, 100)
	checkJoin(t, pts, pts, 2, true)
}

func TestDistanceJoinZeroDistance(t *testing.T) {
	pts := []geom.Point{{1, 1}, {1, 1}, {2, 2}}
	checkJoin(t, pts, pts, 0, false)
}

func TestDistanceJoinValidation(t *testing.T) {
	ir := buildMBRQT(t, []geom.Point{{1, 1}})
	is := buildMBRQT(t, []geom.Point{{1, 1, 1}})
	if _, err := DistanceJoin(ir, is, 1, false, func(Pair) error { return nil }); err == nil {
		t.Fatal("expected dimensionality error")
	}
	is2 := buildMBRQT(t, []geom.Point{{2, 2}})
	if _, err := DistanceJoin(ir, is2, -1, false, func(Pair) error { return nil }); err == nil {
		t.Fatal("expected negative-distance error")
	}
}
