package core

import (
	"math/rand"
	"reflect"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// skewedPoints builds the scheduler's adversary: one dense cluster that
// becomes a single giant quadtree subtree, plus a thin scatter that
// becomes many trivial ones. A static frontier claimed from a cursor
// leaves one worker draining the cluster while the rest finish the
// scatter and idle; the work-stealing scheduler must split the cluster
// task instead.
func skewedPoints(rng *rand.Rand, clustered, scattered int) []geom.Point {
	pts := make([]geom.Point, 0, clustered+scattered)
	for i := 0; i < clustered; i++ {
		pts = append(pts, geom.Point{1 + rng.Float64(), 1 + rng.Float64()})
	}
	for i := 0; i < scattered; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return pts
}

// TestSchedulerTortureSkewedFrontier runs the self-join over the skewed
// dataset at several worker counts and demands exactly the serial
// engine's behaviour: byte-identical ordered output, set-identical
// unordered output, and full Stats parity (the split path re-expands
// subtrees with the same expandAndPrune call the serial traversal makes,
// so no counter may drift).
func TestSchedulerTortureSkewedFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	pts := skewedPoints(rng, 6000, 200)
	tree := buildMBRQT(t, pts)

	base := Options{ExcludeSelf: true}
	serial, serialStats := collectWith(t, tree, tree, base)

	for _, par := range []int{2, 4, 8} {
		opts := base
		opts.Parallelism = par
		opts.OrderedEmit = true
		got, stats := collectWith(t, tree, tree, opts)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("par=%d ordered: results differ from serial", par)
		}
		if ns, np := normalizeCacheCounters(serialStats), normalizeCacheCounters(stats); ns != np {
			t.Fatalf("par=%d ordered: stats differ:\nserial:   %+v\nparallel: %+v", par, ns, np)
		}

		opts.OrderedEmit = false
		got, stats = collectWith(t, tree, tree, opts)
		sortByObject(got)
		sorted := append([]Result(nil), serial...)
		sortByObject(sorted)
		if !reflect.DeepEqual(got, sorted) {
			t.Fatalf("par=%d unordered: result set differs from serial", par)
		}
		if ns, np := normalizeCacheCounters(serialStats), normalizeCacheCounters(stats); ns != np {
			t.Fatalf("par=%d unordered: stats differ:\nserial:   %+v\nparallel: %+v", par, ns, np)
		}
	}
}

// TestSchedulerSplitsStragglers pins the dynamic-split behaviour itself:
// on the skewed dataset the cluster subtree exceeds the split threshold,
// so a parallel run must report splits (and at least as many tasks as
// the frontier it started from) through QueryReport.Sched.
func TestSchedulerSplitsStragglers(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	pts := skewedPoints(rng, 6000, 200)
	tree := buildMBRQT(t, pts)

	opts := Options{ExcludeSelf: true, Parallelism: 4, OrderedEmit: true}
	rep, err := RunReport(tree, tree, opts, func(Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched.Splits == 0 {
		t.Fatalf("skewed frontier produced no splits: %+v", rep.Sched)
	}
	if rep.Sched.Tasks == 0 {
		t.Fatalf("no tasks recorded: %+v", rep.Sched)
	}
	if rep.Sched.KernelBlocks == 0 || rep.Sched.KernelPairs == 0 {
		t.Fatalf("leaf join reported no kernel batches: %+v", rep.Sched)
	}

	// A serial run of the same query reports no scheduling activity but
	// still batches its leaf joins.
	rep, err = RunReport(tree, tree, Options{ExcludeSelf: true}, func(Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched.Tasks != 0 || rep.Sched.Steals != 0 || rep.Sched.Splits != 0 {
		t.Fatalf("serial run reported scheduler activity: %+v", rep.Sched)
	}
	if rep.Sched.KernelBlocks == 0 {
		t.Fatalf("serial run reported no kernel batches: %+v", rep.Sched)
	}
}

// TestEmitTreeOrderUnderSplit drives the emit tree directly through a
// split-while-pending scenario: subtree 1 splits twice and its pieces
// finish in scrambled order, while subtree 0 finishes last — the flush
// must still be the depth-first leaf order.
func TestEmitTreeOrderUnderSplit(t *testing.T) {
	var got []index.ObjectID
	tree, slots := newEmitTree(func(r Result) error {
		got = append(got, r.Object)
		return nil
	}, 3)

	res := func(id int) []Result { return []Result{{Object: index.ObjectID(id)}} }

	// Split slot 1 into two, then its second child again into two.
	kids := tree.split(slots[1], 2)
	grand := tree.split(kids[1], 2)

	// Finish in adversarial order: deepest leaves first, slot 0 last.
	if err := tree.finish(grand[1], res(13)); err != nil {
		t.Fatal(err)
	}
	if err := tree.finish(grand[0], res(12)); err != nil {
		t.Fatal(err)
	}
	if err := tree.finish(slots[2], res(20)); err != nil {
		t.Fatal(err)
	}
	if err := tree.finish(kids[0], res(11)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("flushed %v before the first subtree finished", got)
	}
	if err := tree.finish(slots[0], res(0)); err != nil {
		t.Fatal(err)
	}
	want := []index.ObjectID{0, 11, 12, 13, 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("emit order = %v, want %v", got, want)
	}
}
