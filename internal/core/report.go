package core

import (
	"context"
	"time"

	"allnn/internal/index"
	"allnn/internal/nodecache"
	"allnn/internal/obs"
	"allnn/internal/storage"
)

// Timings is the wall-time breakdown of one execution. Wall covers the
// whole query; Setup, Seed, Frontier and Traverse partition the main
// goroutine's time; Expand, Filter and Gather split the traversal into
// the paper's three stages and are disjoint (the Filter drain is
// subtracted from its enclosing Expand). Under parallel execution the
// stage clocks sum every worker's time, so Expand+Filter+Gather is CPU
// time and may exceed Wall — that excess is exactly the parallel
// speed-up.
//
// Timings lives outside Stats on purpose: Stats counters are invariant
// across serial and parallel execution of the same query (and tested to
// be), while timings never are.
type Timings struct {
	Wall     time.Duration `json:"wall_ns"`
	Setup    time.Duration `json:"setup_ns"`
	Seed     time.Duration `json:"seed_ns"`
	Frontier time.Duration `json:"frontier_ns"`
	Traverse time.Duration `json:"traverse_ns"`
	Expand   time.Duration `json:"expand_ns"`
	Filter   time.Duration `json:"filter_ns"`
	Gather   time.Duration `json:"gather_ns"`
}

// addStages folds a parallel worker's stage clocks into t. Only the
// per-stage clocks travel: Wall, Setup, Seed, Frontier and Traverse
// belong to the main goroutine.
func (t *Timings) addStages(o Timings) {
	t.Expand += o.Expand
	t.Filter += o.Filter
	t.Gather += o.Gather
}

// QueryReport is the unified per-query observability record: the
// engine's work counters, the buffer-pool and decoded-node-cache
// activity attributable to this run (deltas between snapshots taken
// around it), the cache residency after the run, and the stage timing
// breakdown. It marshals to the JSON consumed by EXPERIMENTS.md's
// counter-reproduction workflow; the nested structs' Go field names are
// the stable wire format.
type QueryReport struct {
	Engine Stats `json:"engine"`
	// Pool is the buffer-pool activity during the run, summed over the
	// distinct pools behind the two indexes (one for a self-join). Misses
	// is the paper's I/O cost.
	Pool storage.Stats `json:"pool"`
	// Cache is the decoded-node cache activity during the run;
	// CacheResidency is the occupancy gauge sampled after it.
	Cache          nodecache.Counters  `json:"cache"`
	CacheResidency nodecache.Residency `json:"cache_residency"`
	Timings        Timings             `json:"timings"`
	// Sched is the scheduling/batch-kernel activity of the run. Like
	// Timings (and unlike Engine) it is timing-dependent and carries no
	// serial/parallel parity guarantee.
	Sched SchedStats `json:"sched"`
}

// pooled is implemented by indexes whose pages live in a buffer pool
// (both mbrqt.Tree and rstar.Tree do). Structural, so core needs no
// dependency on the index implementations.
type pooled interface {
	Pool() *storage.BufferPool
}

// distinctPools returns the distinct buffer pools behind the given trees
// (a self-join passes the same tree twice and yields one pool).
func distinctPools(trees ...index.Tree) []*storage.BufferPool {
	var pools []*storage.BufferPool
	for _, t := range trees {
		pt, ok := t.(pooled)
		if !ok {
			continue
		}
		p := pt.Pool()
		if p == nil {
			continue
		}
		dup := false
		for _, q := range pools {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			pools = append(pools, p)
		}
	}
	return pools
}

// RunReport executes the query like Run and returns the unified
// QueryReport alongside the error. Pool and cache activity is
// attributed to the run by snapshotting their cumulative counters
// before and after, so long-lived pools need no reset.
//
// When opts.Registry is set, the report is also published there: the
// engine counters accumulate under the "engine" family, the live pools
// and caches are wired under "pool" and "cache" (callback-backed and
// idempotent, summing when an R-vs-S join has two), and the query wall
// time is observed into the "engine.query_nanos" histogram.
func RunReport(ir, is index.Tree, opts Options, emit func(Result) error) (QueryReport, error) {
	return RunReportContext(context.Background(), ir, is, opts, emit)
}

// RunReportContext is RunReport with cancellation (see RunContext). On
// early cancellation the report covers the work done up to the abort.
func RunReportContext(ctx context.Context, ir, is index.Tree, opts Options, emit func(Result) error) (QueryReport, error) {
	var rep QueryReport
	pools := distinctPools(ir, is)
	poolsBefore := make([]storage.Stats, len(pools))
	for i, p := range pools {
		poolsBefore[i] = p.Stats()
	}
	// Attach the caches up-front so their counters can be snapshotted;
	// Run's own setupNodeCaches call is idempotent and reuses them.
	caches := setupNodeCaches(ir, is, opts.NodeCacheBytes, opts.Parallelism)
	cachesBefore := cacheSnapshot(caches)

	opts.timings = &rep.Timings
	opts.Sched = &rep.Sched
	stats, err := RunContext(ctx, ir, is, opts, emit)
	rep.Engine = stats
	for i, p := range pools {
		rep.Pool.Add(p.Stats().Delta(poolsBefore[i]))
	}
	rep.Cache = cacheSnapshot(caches).Delta(cachesBefore)
	for _, c := range caches {
		r := c.Residency()
		rep.CacheResidency.Entries += r.Entries
		rep.CacheResidency.Bytes += r.Bytes
	}

	if r := opts.Registry; r != nil {
		rep.Engine.AddTo(r)
		rep.Sched.AddTo(r)
		registerPools(r, pools)
		registerCaches(r, caches)
		r.Histogram("engine.query_nanos", obs.LatencyBuckets()).
			Observe(float64(rep.Timings.Wall.Nanoseconds()))
	}
	return rep, err
}

// registerPools wires the live pools under the "pool" family. The
// callbacks sum over the distinct pools, so an R-vs-S join over two
// stores reports combined activity (re-registration replaces the
// previous callbacks — idempotent for repeated runs over the same
// trees).
func registerPools(r *obs.Registry, pools []*storage.BufferPool) {
	if len(pools) == 0 {
		return
	}
	sum := func() storage.Stats {
		var s storage.Stats
		for _, p := range pools {
			s.Add(p.Stats())
		}
		return s
	}
	r.CounterFunc("pool.hits", func() uint64 { return sum().Hits })
	r.CounterFunc("pool.misses", func() uint64 { return sum().Misses })
	r.CounterFunc("pool.reads", func() uint64 { return sum().Reads })
	r.CounterFunc("pool.writes", func() uint64 { return sum().Writes })
	r.CounterFunc("pool.evictions", func() uint64 { return sum().Evictions })
	r.CounterFunc("pool.retries", func() uint64 { return sum().Retries })
	r.CounterFunc("pool.corrupt_pages", func() uint64 { return sum().CorruptPages })
	r.GaugeFunc("pool.pinned_frames", func() int64 {
		n := 0
		for _, p := range pools {
			n += p.PinnedFrames()
		}
		return int64(n)
	})
}

// registerCaches wires the live decoded-node caches under the "cache"
// family, summing like registerPools.
func registerCaches(r *obs.Registry, caches []*index.NodeCache) {
	if len(caches) == 0 {
		return
	}
	sum := func() nodecache.Counters {
		var ct nodecache.Counters
		for _, c := range caches {
			ct.Add(c.Counters())
		}
		return ct
	}
	res := func() nodecache.Residency {
		var rs nodecache.Residency
		for _, c := range caches {
			cr := c.Residency()
			rs.Entries += cr.Entries
			rs.Bytes += cr.Bytes
		}
		return rs
	}
	r.CounterFunc("cache.hits", func() uint64 { return sum().Hits })
	r.CounterFunc("cache.misses", func() uint64 { return sum().Misses })
	r.CounterFunc("cache.evictions", func() uint64 { return sum().Evictions })
	r.CounterFunc("cache.invalidations", func() uint64 { return sum().Invalidations })
	r.GaugeFunc("cache.entries", func() int64 { return int64(res().Entries) })
	r.GaugeFunc("cache.bytes", func() int64 { return res().Bytes })
}
