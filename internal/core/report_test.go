package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"allnn/internal/obs"
)

// TestStatsParitySerialVsParallel4 pins the observability contract that
// Stats counters are a pure function of the query, not of its schedule:
// a Parallelism=4 run must report the exact same Stats struct as the
// serial engine. The node cache is disabled because its hit/miss split
// (though not the sum) depends on which worker decodes a node first.
func TestStatsParitySerialVsParallel4(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := clusteredPoints(rng, 1200, 2, 100)
	tree := buildMBRQT(t, pts)
	for _, k := range []int{1, 5} {
		serial := Options{K: k, ExcludeSelf: true, NodeCacheBytes: NodeCacheDisabled}
		_, wantStats := collectWith(t, tree, tree, serial)
		par := serial
		par.Parallelism = 4
		_, gotStats := collectWith(t, tree, tree, par)
		if gotStats != wantStats {
			t.Fatalf("k=%d: parallel stats differ from serial\n got %+v\nwant %+v", k, gotStats, wantStats)
		}
	}
}

// TestRunReportRegistryParity: after a single-query run, the registry's
// snapshot must agree with the returned QueryReport on every engine, pool
// and cache metric — the acceptance check behind -metrics-addr.
func TestRunReportRegistryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rPts := clusteredPoints(rng, 800, 2, 100)
	sPts := uniformPoints(rng, 600, 2, 100)
	ir, is := buildMBRQT(t, rPts), buildMBRQT(t, sPts)
	for _, p := range distinctPools(ir, is) {
		p.ResetStats() // drop build-time I/O so cumulative == per-run delta
	}

	reg := obs.NewRegistry()
	opts := Options{Registry: reg}
	rep, err := RunReport(ir, is, opts, func(Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine.Results != uint64(len(rPts)) {
		t.Fatalf("results = %d, want %d", rep.Engine.Results, len(rPts))
	}

	s := reg.Snapshot()
	wantCounters := map[string]uint64{
		"engine.distance_calcs":    rep.Engine.DistanceCalcs,
		"engine.lpqs_created":      rep.Engine.LPQsCreated,
		"engine.enqueued":          rep.Engine.Enqueued,
		"engine.pruned_on_probe":   rep.Engine.PrunedOnProbe,
		"engine.pruned_by_filter":  rep.Engine.PrunedByFilter,
		"engine.nodes_expanded_r":  rep.Engine.NodesExpandedR,
		"engine.nodes_expanded_s":  rep.Engine.NodesExpandedS,
		"engine.results":           rep.Engine.Results,
		"engine.node_cache_hits":   rep.Engine.NodeCacheHits,
		"engine.node_cache_misses": rep.Engine.NodeCacheMisses,
		"pool.hits":                rep.Pool.Hits,
		"pool.misses":              rep.Pool.Misses,
		"pool.reads":               rep.Pool.Reads,
		"pool.writes":              rep.Pool.Writes,
		"pool.evictions":           rep.Pool.Evictions,
		"cache.hits":               rep.Cache.Hits,
		"cache.misses":             rep.Cache.Misses,
		"cache.evictions":          rep.Cache.Evictions,
		"cache.invalidations":      rep.Cache.Invalidations,
	}
	for name, want := range wantCounters {
		got, ok := s.Counters[name]
		if !ok {
			t.Errorf("registry is missing %q", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, registry says %d", name, want, got)
		}
	}
	if got := s.Gauges["cache.bytes"]; got != rep.CacheResidency.Bytes {
		t.Errorf("cache.bytes gauge = %d, report says %d", got, rep.CacheResidency.Bytes)
	}
	if got := s.Gauges["cache.entries"]; got != int64(rep.CacheResidency.Entries) {
		t.Errorf("cache.entries gauge = %d, report says %d", got, rep.CacheResidency.Entries)
	}
	h := s.Histograms["engine.query_nanos"]
	if h.Count != 1 {
		t.Errorf("engine.query_nanos observed %d queries, want 1", h.Count)
	}

	// The QueryReport must survive its own wire format.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != rep.Engine || back.Timings != rep.Timings {
		t.Fatalf("QueryReport JSON round-trip changed it:\n got %+v\nwant %+v", back, rep)
	}
}

// TestRunReportTimings checks the stage-clock structure the DESIGN.md
// overhead contract promises: Wall covers the query, the main-goroutine
// phases partition it, and the serial three-stage clocks fit inside
// Traverse (they are disjoint sub-intervals of it).
func TestRunReportTimings(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := clusteredPoints(rng, 1000, 2, 100)
	tree := buildMBRQT(t, pts)

	rep, err := RunReport(tree, tree, Options{ExcludeSelf: true}, func(Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	tm := rep.Timings
	if tm.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", tm.Wall)
	}
	if sum := tm.Setup + tm.Seed + tm.Traverse; sum > tm.Wall+time.Millisecond {
		t.Fatalf("Setup+Seed+Traverse = %v exceeds Wall = %v", sum, tm.Wall)
	}
	if tm.Traverse <= 0 {
		t.Fatalf("Traverse = %v, want > 0", tm.Traverse)
	}
	if stages := tm.Expand + tm.Filter + tm.Gather; stages <= 0 || stages > tm.Traverse+time.Millisecond {
		t.Fatalf("stage clocks %v (expand %v, filter %v, gather %v) do not fit Traverse %v",
			stages, tm.Expand, tm.Filter, tm.Gather, tm.Traverse)
	}

	// Parallel runs sum the stage clocks over workers; the structure that
	// must hold is main-phase partitioning, plus Frontier being counted.
	prep, err := RunReport(tree, tree,
		Options{ExcludeSelf: true, Parallelism: 4, OrderedEmit: true},
		func(Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ptm := prep.Timings
	if ptm.Wall <= 0 || ptm.Frontier <= 0 {
		t.Fatalf("parallel timings missing Wall/Frontier: %+v", ptm)
	}
	if ptm.Expand+ptm.Filter+ptm.Gather <= 0 {
		t.Fatalf("parallel stage clocks all zero: %+v", ptm)
	}
}

// coreTraceDoc decodes the Chrome trace-event JSON in tests.
type coreTraceDoc struct {
	TraceEvents []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   float64  `json:"ts"`
		Dur  *float64 `json:"dur"`
		Tid  int64    `json:"tid"`
	} `json:"traceEvents"`
}

// TestTraceSpanNesting runs a traced serial query and checks the span
// taxonomy: setup+seed+traverse cover (almost) all of the query span,
// and every filter span lies inside an expand span on the same lane.
func TestTraceSpanNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := clusteredPoints(rng, 1000, 2, 100)
	tree := buildMBRQT(t, pts)

	tr := obs.NewTracer()
	if _, _, err := Collect(tree, tree, Options{ExcludeSelf: true, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc coreTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	type span struct{ ts, end float64 }
	var query *span
	phases := map[string]span{}
	var expands, filters []span
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur == nil {
			continue
		}
		s := span{e.Ts, e.Ts + *e.Dur}
		switch e.Name {
		case "query":
			q := s
			query = &q
		case "setup", "seed", "traverse":
			phases[e.Name] = s
		case "expand":
			expands = append(expands, s)
		case "filter":
			filters = append(filters, s)
		}
	}
	if query == nil {
		t.Fatal("no query span in trace")
	}
	if len(phases) != 3 {
		t.Fatalf("got phases %v, want setup+seed+traverse", phases)
	}
	var covered float64
	for name, p := range phases {
		if p.ts < query.ts-1 || p.end > query.end+1 {
			t.Fatalf("%s span [%g,%g] outside query [%g,%g]", name, p.ts, p.end, query.ts, query.end)
		}
		covered += p.end - p.ts
	}
	if wall := query.end - query.ts; covered < 0.95*wall {
		t.Fatalf("phase spans cover %.1f%% of the query wall time, want >= 95%%", 100*covered/wall)
	}
	if len(expands) == 0 || len(filters) == 0 {
		t.Fatalf("trace has %d expand and %d filter spans, want both > 0", len(expands), len(filters))
	}
	for _, f := range filters {
		contained := false
		for _, e := range expands {
			if f.ts >= e.ts-0.001 && f.end <= e.end+0.001 {
				contained = true
				break
			}
		}
		if !contained {
			t.Fatalf("filter span [%g,%g] not contained in any expand span", f.ts, f.end)
		}
	}
}

// TestTraceParallelLanes: a traced Parallelism=4 run must put worker and
// subtree spans on per-worker lanes, with each subtree inside its
// worker's lifetime span.
func TestTraceParallelLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := clusteredPoints(rng, 1000, 2, 100)
	tree := buildMBRQT(t, pts)

	tr := obs.NewTracer()
	opts := Options{ExcludeSelf: true, Parallelism: 4, OrderedEmit: true, Tracer: tr}
	if _, _, err := Collect(tree, tree, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc coreTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	type span struct{ ts, end float64 }
	workers := map[int64]span{}
	subtrees := map[int64][]span{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur == nil {
			continue
		}
		s := span{e.Ts, e.Ts + *e.Dur}
		switch e.Name {
		case "worker":
			workers[e.Tid] = s
		case "subtree":
			subtrees[e.Tid] = append(subtrees[e.Tid], s)
		}
	}
	if len(workers) == 0 {
		t.Fatal("no worker spans in parallel trace")
	}
	total := 0
	for tid, subs := range subtrees {
		w, ok := workers[tid]
		if !ok {
			t.Fatalf("subtree spans on lane %d without a worker span", tid)
		}
		for _, s := range subs {
			if s.ts < w.ts-1 || s.end > w.end+1 {
				t.Fatalf("subtree [%g,%g] outside worker %d lifetime [%g,%g]", s.ts, s.end, tid, w.ts, w.end)
			}
		}
		total += len(subs)
	}
	if total == 0 {
		t.Fatal("no subtree spans in parallel trace")
	}
}
