package core

import (
	"fmt"
	"math/rand"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

// benchBuilders pairs each index kind with its test builder so the
// benchmarks below cover MBA (MBRQT) and RBA (R*-tree) symmetrically.
var benchBuilders = []struct {
	name  string
	build func(testing.TB, []geom.Point) index.Tree
}{
	{"mbrqt", buildMBRQT},
	{"rstar", buildRStar},
}

// BenchmarkExpand measures a single node expansion with the decoded-node
// cache absent (every iteration decodes from the buffer pool) and warm
// (every iteration is served the shared cached slice). The warm case is
// the engine's steady state and must report 0 allocs/op.
func BenchmarkExpand(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	pts := uniformPoints(rng, 5000, 2, 100)
	for _, bb := range benchBuilders {
		tree := bb.build(b, pts)
		nc := tree.(index.NodeCacher)
		root, err := tree.Root()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bb.name+"/cold", func(b *testing.B) {
			nc.SetNodeCache(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Expand(&root); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bb.name+"/warm", func(b *testing.B) {
			nc.SetNodeCache(index.NewNodeCache(0))
			if _, err := tree.Expand(&root); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Expand(&root); err != nil {
					b.Fatal(err)
				}
			}
		})
		nc.SetNodeCache(nil)
	}
}

// BenchmarkCollect measures the end-to-end self-ANN join, cache off vs
// warm. Both cases run one untimed warm-up execution first, so the
// cache-on allocs/op show the steady state the engine reaches on
// repeated (or parallel, per-worker) executions.
func BenchmarkCollect(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	pts := clusteredPoints(rng, 3000, 2, 100)
	for _, bb := range benchBuilders {
		tree := bb.build(b, pts)
		for _, mode := range []struct {
			name string
			opts Options
		}{
			{"cacheoff", Options{ExcludeSelf: true, NodeCacheBytes: NodeCacheDisabled}},
			{"cachewarm", Options{ExcludeSelf: true}},
		} {
			b.Run(fmt.Sprintf("%s/%s", bb.name, mode.name), func(b *testing.B) {
				if _, _, err := Collect(tree, tree, mode.opts); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := Collect(tree, tree, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
