package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
)

func objEntry(id int, x, y float64) *index.Entry {
	p := geom.Point{x, y}
	return &index.Entry{Kind: index.ObjectEntry, MBR: geom.PointRect(p), Point: p, Object: index.ObjectID(id), Count: 1}
}

func nodeEntry(lo, hi geom.Point, count uint32) *index.Entry {
	return &index.Entry{Kind: index.NodeEntry, MBR: geom.NewRect(lo, hi), Count: count}
}

func newTestLPQ(k int, kb KBound, monotone bool) (*lpq, *Stats) {
	stats := &Stats{}
	owner := nodeEntry(geom.Point{0, 0}, geom.Point{1, 1}, 10)
	return newLPQ(owner, math.Inf(1), k, kb, monotone, 1, stats), stats
}

func TestLPQOrdering(t *testing.T) {
	q, _ := newTestLPQ(1, KBoundKth, false)
	// maxd large enough not to prune anything.
	for _, mind := range []float64{5, 1, 3, 2, 4} {
		q.enqueue(lpqItem{e: objEntry(int(mind), 0, 0), mind: mind, maxd: 100})
	}
	var got []float64
	for {
		it, ok := q.dequeue()
		if !ok {
			break
		}
		got = append(got, it.mind)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("dequeue order not sorted by MIND: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("dequeued %d items, want 5", len(got))
	}
}

func TestLPQTieBreakByMaxd(t *testing.T) {
	q, _ := newTestLPQ(1, KBoundKth, false)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 50})
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 1, maxd: 10})
	it, _ := q.dequeue()
	if it.maxd != 10 {
		t.Fatalf("tie on MIND must pop smaller MAXD first, got maxd %g", it.maxd)
	}
}

func TestLPQBoundTightensOnEnqueue(t *testing.T) {
	q, _ := newTestLPQ(1, KBoundKth, false)
	if !math.IsInf(q.bound(), 1) {
		t.Fatal("fresh LPQ bound should be the inherited +Inf")
	}
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 2, maxd: 9})
	if q.bound() != 9 {
		t.Fatalf("bound = %g, want 9", q.bound())
	}
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 1, maxd: 4})
	if q.bound() != 4 {
		t.Fatalf("bound = %g, want 4", q.bound())
	}
}

func TestLPQProbePruning(t *testing.T) {
	q, stats := newTestLPQ(1, KBoundKth, false)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 2})
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 50, maxd: 60}) // mind > bound 2
	if q.len() != 1 {
		t.Fatalf("len = %d, want 1 (far item pruned)", q.len())
	}
	if stats.PrunedOnProbe != 1 {
		t.Fatalf("PrunedOnProbe = %d, want 1", stats.PrunedOnProbe)
	}
}

func TestLPQFilterStageTruncates(t *testing.T) {
	q, stats := newTestLPQ(1, KBoundKth, false)
	// Fill with loose items first.
	for i := 0; i < 5; i++ {
		q.enqueue(lpqItem{e: objEntry(i, 0, 0), mind: float64(10 + i), maxd: 100})
	}
	if q.len() != 5 {
		t.Fatalf("setup: len = %d", q.len())
	}
	// A tight item (maxd 3) must evict everything with mind > 3.
	q.enqueue(lpqItem{e: objEntry(9, 0, 0), mind: 1, maxd: 3})
	if q.len() != 1 {
		t.Fatalf("Filter Stage left %d items, want 1", q.len())
	}
	if stats.PrunedByFilter != 5 {
		t.Fatalf("PrunedByFilter = %d, want 5", stats.PrunedByFilter)
	}
}

// TestLPQBoundLoosensOnDequeue verifies the paper-faithful current-member
// semantics: removing the bound carrier loosens the bound back toward the
// inherited value.
func TestLPQBoundLoosensOnDequeue(t *testing.T) {
	stats := &Stats{}
	owner := nodeEntry(geom.Point{0, 0}, geom.Point{1, 1}, 10)
	q := newLPQ(owner, 1000, 1, KBoundKth, false, 1, stats)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 5})
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 2, maxd: 80})
	if q.bound() != 5 {
		t.Fatalf("bound = %g, want 5", q.bound())
	}
	q.dequeue() // removes the carrier (mind 1, maxd 5)
	if q.bound() != 80 {
		t.Fatalf("bound after dequeue = %g, want 80 (loosened to remaining member)", q.bound())
	}
	q.dequeue()
	if q.bound() != 1000 {
		t.Fatalf("bound after draining = %g, want inherited 1000", q.bound())
	}
}

// TestLPQMonotoneBoundNeverLoosens verifies the MonotoneBound enhancement.
func TestLPQMonotoneBoundNeverLoosens(t *testing.T) {
	stats := &Stats{}
	owner := nodeEntry(geom.Point{0, 0}, geom.Point{1, 1}, 10)
	q := newLPQ(owner, 1000, 1, KBoundKth, true, 1, stats)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 5})
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 2, maxd: 80})
	q.dequeue()
	if q.bound() != 5 {
		t.Fatalf("monotone bound loosened to %g after dequeue", q.bound())
	}
}

func TestLPQKthBoundRequiresKMembers(t *testing.T) {
	q, _ := newTestLPQ(3, KBoundKth, false)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 10})
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 1, maxd: 20})
	if !math.IsInf(q.bound(), 1) {
		t.Fatalf("bound with 2 of 3 members = %g, want +Inf", q.bound())
	}
	q.enqueue(lpqItem{e: objEntry(3, 0, 0), mind: 1, maxd: 30})
	if q.bound() != 30 {
		t.Fatalf("3rd-smallest maxd bound = %g, want 30", q.bound())
	}
}

func TestLPQMaxAllBound(t *testing.T) {
	q, _ := newTestLPQ(2, KBoundMaxAll, false)
	q.enqueue(lpqItem{e: objEntry(1, 0, 0), mind: 1, maxd: 10})
	if !math.IsInf(q.bound(), 1) {
		t.Fatal("max-all bound needs k members")
	}
	q.enqueue(lpqItem{e: objEntry(2, 0, 0), mind: 1, maxd: 25})
	if q.bound() != 25 {
		t.Fatalf("max-all bound = %g, want 25", q.bound())
	}
}

// TestLPQRandomizedInvariants drives an LPQ with random operations and
// checks the structural invariants after each step.
func TestLPQRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(3)
		q, _ := newTestLPQ(k, KBound(rng.Intn(2)), rng.Intn(2) == 0)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) > 0 {
				mind := rng.Float64() * 100
				maxd := mind + rng.Float64()*100
				q.enqueue(lpqItem{e: objEntry(op, 0, 0), mind: mind, maxd: maxd})
			} else {
				q.dequeue()
			}
			// Invariant: live items sorted by (mind, maxd), all within bound.
			live := q.items[q.head:]
			bound := q.slackBound()
			for i := range live {
				if i > 0 {
					prev, cur := live[i-1], live[i]
					if prev.mind > cur.mind || (prev.mind == cur.mind && prev.maxd > cur.maxd) {
						t.Fatalf("live items out of order at %d", i)
					}
				}
				if live[i].mind > bound {
					t.Fatalf("live item with mind %g above bound %g survived", live[i].mind, bound)
				}
			}
		}
	}
}

func TestMetricStrings(t *testing.T) {
	if NXNDist.String() != "NXNDIST" || MaxMaxDist.String() != "MAXMAXDIST" {
		t.Fatal("metric names changed")
	}
	if Metric(9).String() != "UNKNOWN" {
		t.Fatal("unknown metric should say so")
	}
	if DepthFirst.String() != "depth-first" || BreadthFirst.String() != "breadth-first" {
		t.Fatal("traversal names changed")
	}
}

func TestHeapHelpers(t *testing.T) {
	var h []float64
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		heapPushMax(&h, v)
	}
	if h[0] != 9 {
		t.Fatalf("max-heap root = %g, want 9", h[0])
	}
	heapReplaceMax(h, 0)
	if h[0] != 6 {
		t.Fatalf("after replacing max, root = %g, want 6", h[0])
	}
}
