package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/obs"
	"allnn/internal/pq"
	"allnn/internal/storage"
)

// Run executes an ANN/AkNN query: for every point in the query index ir,
// it finds the Options.K nearest points in the target index is, calling
// emit once per query object. Results stream in index traversal order.
//
// Run is the paper's Algorithm 2 (MBA): it seeds the root LPQ, then
// processes the LPQ queue depth-first (ANN-DFBI, Algorithm 3) with
// bi-directional node expansion and the Three-Stage pruning of
// Algorithm 4. Over MBRQT indexes this is MBA; over R*-trees, RBA.
func Run(ir, is index.Tree, opts Options, emit func(Result) error) (Stats, error) {
	return RunContext(context.Background(), ir, is, opts, emit)
}

// armCancel wires a context to the polling-based cancellation machinery
// shared by every traversal: a watcher goroutine flips the returned
// atomic flag when ctx is cancelled, and the engine's loops poll it. The
// flag is nil when ctx can never be cancelled (context.Background()), so
// the paper-configuration hot path pays only a nil check. The returned
// disarm function stops the watcher; call it (usually via defer) when
// the traversal ends. A context that is already cancelled surfaces as an
// immediate error with a nil disarm-safe pair.
func armCancel(ctx context.Context) (cancelled *atomic.Bool, disarm func(), err error) {
	disarm = func() {}
	done := ctx.Done()
	if done == nil {
		return nil, disarm, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, disarm, err
	}
	cancelled = new(atomic.Bool)
	stopWatch := make(chan struct{})
	disarm = func() { close(stopWatch) }
	go func() {
		select {
		case <-done:
			cancelled.Store(true)
		case <-stopWatch:
		}
	}()
	return cancelled, disarm, nil
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes), the traversal — serial or parallel — stops at the
// next loop boundary, releases its resources (no buffer-pool pin survives
// an abort) and returns ctx.Err(). A context that can never be cancelled
// (context.Background()) costs nothing: the cancellation machinery — one
// watcher goroutine flipping a shared atomic flag the engine polls — is
// only armed when ctx.Done() is non-nil.
func RunContext(ctx context.Context, ir, is index.Tree, opts Options, emit func(Result) error) (stats Stats, err error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return stats, err
	}
	cancelled, disarm, err := armCancel(ctx)
	if err != nil {
		return stats, err
	}
	defer disarm()
	if ir.Dim() != is.Dim() {
		return stats, fmt.Errorf("core: index dimensionality mismatch: %d vs %d", ir.Dim(), is.Dim())
	}
	if opts.Traversal == BreadthFirst && opts.Parallelism > 1 {
		return stats, fmt.Errorf("core: BreadthFirst traversal does not support Parallelism > 1 (its single global queue has no independent subtrees); use DepthFirst")
	}

	// Observability. tMark advances across the setup/seed/traverse
	// boundaries; the "query" span (and Wall) closes on every exit path.
	tr := opts.Tracer
	obsOn := tr != nil || opts.timings != nil
	var tQuery, tMark time.Time
	if obsOn {
		tQuery = time.Now()
		tMark = tQuery
		defer func() {
			now := time.Now()
			tr.Complete("query", obs.TidMain, tQuery, now, "results", int64(stats.Results))
			if opts.timings != nil {
				opts.timings.Wall += now.Sub(tQuery)
			}
		}()
	}

	caches := setupNodeCaches(ir, is, opts.NodeCacheBytes, opts.Parallelism)
	cachesBefore := cacheSnapshot(caches)
	defer func() { addCacheDelta(&stats, cachesBefore, cacheSnapshot(caches)) }()
	if tr != nil {
		tr.SetThreadName(obs.TidMain, "engine")
		tr.SetThreadName(obs.TidPool, "bufferpool")
		tr.SetThreadName(obs.TidCache, "nodecache")
		for _, p := range distinctPools(ir, is) {
			p.SetTracer(tr)
			defer p.SetTracer(nil)
		}
		for _, c := range caches {
			c.SetTracer(tr)
			defer c.SetTracer(nil)
		}
	}
	rootR, err := ir.Root()
	if err != nil {
		return stats, err
	}
	rootS, err := is.Root()
	if err != nil {
		return stats, err
	}
	if obsOn {
		now := time.Now()
		tr.Complete("setup", obs.TidMain, tMark, now, "", 0)
		if opts.timings != nil {
			opts.timings.Setup += now.Sub(tMark)
		}
		tMark = now
	}
	if rootR.Count == 0 {
		return stats, nil // nothing to query
	}
	e := &engine{ir: ir, is: is, opts: opts, emit: emit, stats: &stats,
		shrink: opts.approxShrink(),
		ctx:    ctx, cancelled: cancelled,
		tr: tr, tid: obs.TidMain, tm: opts.timings}
	if nc, ok := is.(index.NodeCacher); ok && nc.NodeCacheRef() != nil {
		// The shared decoded-node cache is attached: front it with a
		// small engine-local lookaside so the hottest I_S nodes skip the
		// shard locks entirely (each parallel worker gets its own).
		e.memoS = new(nodeMemo)
	}
	if opts.Sched != nil {
		defer func() { opts.Sched.Add(e.sched) }()
	}
	if rootS.Count == 0 {
		// No targets: every query object gets an empty neighbor list.
		return stats, e.emitEmpty(&rootR)
	}

	root := e.getLPQ(&rootR, infinity, opts.effectiveK(), opts.KBound, !opts.VolatileBounds)
	mind, maxd := e.distances(&rootR, &rootS)
	root.enqueue(lpqItem{e: &rootS, mind: mind, maxd: maxd})
	if obsOn {
		now := time.Now()
		tr.Complete("seed", obs.TidMain, tMark, now, "", 0)
		if opts.timings != nil {
			opts.timings.Seed += now.Sub(tMark)
		}
		tMark = now
	}

	switch opts.Traversal {
	case BreadthFirst:
		queue := []*lpq{root}
		for head := 0; head < len(queue) && err == nil; head++ {
			if err = e.checkCancel(); err != nil {
				break
			}
			q := queue[head]
			queue[head] = nil // release the popped LPQ for the GC
			var children []*lpq
			children, err = e.expandAndPrune(q)
			if err == nil {
				e.putLPQ(q)
				queue = append(queue, children...)
			}
		}
	default: // DepthFirst
		if opts.Parallelism > 1 {
			err = e.runParallel(root, opts.Parallelism)
		} else {
			err = e.dfbi(root)
		}
	}
	if obsOn {
		now := time.Now()
		tr.Complete("traverse", obs.TidMain, tMark, now, "results", int64(stats.Results))
		if opts.timings != nil {
			opts.timings.Traverse += now.Sub(tMark)
		}
	}
	return stats, err
}

// Collect runs the query and materialises all results.
func Collect(ir, is index.Tree, opts Options) ([]Result, Stats, error) {
	return CollectContext(context.Background(), ir, is, opts)
}

// CollectContext is Collect with cancellation (see RunContext). On early
// cancellation the results gathered so far are returned alongside
// ctx.Err().
func CollectContext(ctx context.Context, ir, is index.Tree, opts Options) ([]Result, Stats, error) {
	var out []Result
	stats, err := RunContext(ctx, ir, is, opts, func(r Result) error {
		out = append(out, r)
		return nil
	})
	return out, stats, err
}

type engine struct {
	ir, is index.Tree
	opts   Options
	emit   func(Result) error
	stats  *Stats

	// shrink is Options.approxShrink() — the squared-space multiplier
	// applied to admission-side pruning bounds in approximate mode.
	// Exactly 1 for exact queries, where every approximate branch below
	// is gated behind a `shrink != 1` test and the hot path is unchanged.
	shrink float64

	// Cancellation: cancelled is the shared flag the RunContext watcher
	// goroutine flips (nil when the context can never be cancelled, so the
	// paper-configuration hot path stays free of it); ctx supplies the
	// error to surface. Parallel workers share both.
	ctx       context.Context
	cancelled *atomic.Bool

	// Observability: tr records stage spans on lane tid (parallel workers
	// get lanes of their own); tm accumulates the stage wall-time
	// breakdown. Both nil in the default configuration, where the only
	// overhead is the obsOn nil check per expandAndPrune call.
	tr  *obs.Tracer
	tid int64
	tm  *Timings

	// Per-engine scratch reused across expandAndPrune calls. The engine
	// is single-threaded (each parallel worker builds its own), and the
	// leaf join and the Gather Stage never nest, so one set suffices.
	join       leafJoin
	gatherBest *pq.KBest[*index.Entry]
	gatherTop  []pq.Item[*index.Entry]

	// lpqFree is the engine-private LPQ freelist (see getLPQ); memoS is
	// the engine-local decoded-node lookaside for I_S (nil unless the
	// target index has a node cache attached); sched accumulates the
	// scheduler and batch-kernel counters, merged into Options.Sched at
	// the end of the run.
	lpqFree []*lpq
	memoS   *nodeMemo
	sched   SchedStats
}

// memoSlots sizes the engine-local decoded-node lookaside: a
// direct-mapped table of the last expansion per page-id slot. Power of
// two; 128 slots cover the I_S working set of a leaf join (the same few
// nodes are re-expanded once per owning LPQ) at ~4 KB per worker.
const memoSlots = 128

// nodeMemo is a direct-mapped lookaside over the shared decoded-node
// cache. The shared cache is sharded and lock-guarded; during the leaf
// join every worker hammers the same few hot pages, so a private table
// turns those lookups into two loads with no coherence traffic. Entries
// are immutable shared slices (the Tree.Expand contract), and a memo
// lives only for one run, so staleness cannot arise (index mutation never
// runs concurrently with queries).
type nodeMemo struct {
	ids  [memoSlots]storage.PageID
	ok   [memoSlots]bool
	vals [memoSlots][]index.Entry
}

func (m *nodeMemo) get(id storage.PageID) ([]index.Entry, bool) {
	s := uint32(id) & (memoSlots - 1)
	if m.ok[s] && m.ids[s] == id {
		return m.vals[s], true
	}
	return nil, false
}

func (m *nodeMemo) put(id storage.PageID, v []index.Entry) {
	s := uint32(id) & (memoSlots - 1)
	m.ids[s], m.vals[s], m.ok[s] = id, v, true
}

// expandS expands a candidate entry of I_S through the engine-local
// lookaside. A memo hit is counted as a node-cache hit so that the
// hits+misses total stays a pure function of the traversal — the
// invariant the serial/parallel parity tests rely on; the memo only
// changes which tier serves the lookup. Callers count NodesExpandedS
// themselves (the memo does not change expansion counts either).
func (e *engine) expandS(ent *index.Entry) ([]index.Entry, error) {
	if e.memoS != nil {
		if v, ok := e.memoS.get(ent.Child); ok {
			e.stats.NodeCacheHits++
			return v, nil
		}
	}
	v, err := e.is.Expand(ent)
	if err == nil && e.memoS != nil {
		e.memoS.put(ent.Child, v)
	}
	return v, err
}

// obsOn reports whether the engine records spans or stage timings.
func (e *engine) obsOn() bool { return e.tr != nil || e.tm != nil }

// checkCancel returns the context's error once the watcher has flipped
// the shared flag, nil otherwise. One atomic load when a cancellable
// context is attached, one nil check when not — cheap enough for every
// traversal loop to poll.
func (e *engine) checkCancel() error {
	if e.cancelled != nil && e.cancelled.Load() {
		return e.ctx.Err()
	}
	return nil
}

// dfbi is Algorithm 3 (ANN-DFBI): expand the input LPQ, then recurse into
// each child LPQ in FIFO order. The input LPQ is fully drained by the
// expansion and returns to the pool before the recursion (children never
// reference their parent queue).
func (e *engine) dfbi(q *lpq) error {
	if err := e.checkCancel(); err != nil {
		return err
	}
	children, err := e.expandAndPrune(q)
	if err != nil {
		return err
	}
	e.putLPQ(q)
	for _, c := range children {
		if err := e.dfbi(c); err != nil {
			return err
		}
	}
	return nil
}

// distances computes the squared (MIND, MAXD) pair between an owner entry
// and a candidate entry — the Distances() call of Algorithm 4.
func (e *engine) distances(owner, cand *index.Entry) (mind, maxd float64) {
	mind = e.minDist(owner, cand)
	if owner.IsObject() && cand.IsObject() {
		return mind, mind
	}
	return mind, e.maxDist(owner, cand)
}

// minDist is the squared MINMINDIST between an owner and a candidate
// entry. It is the cheap half of Distances(); the engine evaluates it
// first and computes the pruning metric only for survivors.
func (e *engine) minDist(owner, cand *index.Entry) float64 {
	e.stats.DistanceCalcs++
	return e.minDistUncounted(owner, cand)
}

func (e *engine) minDistUncounted(owner, cand *index.Entry) float64 {
	if owner.IsObject() {
		if cand.IsObject() {
			return geom.DistSq(owner.Point, cand.Point)
		}
		return geom.MinDistPointRectSq(owner.Point, cand.MBR)
	}
	if cand.IsObject() {
		return geom.MinDistPointRectSq(cand.Point, owner.MBR)
	}
	return geom.MinDistSq(owner.MBR, cand.MBR)
}

// maxDist is the squared pruning upper bound (MAXD) between an owner and
// a candidate entry. Not valid for object/object pairs (there the exact
// distance serves as both bounds).
func (e *engine) maxDist(owner, cand *index.Entry) float64 {
	if !owner.IsObject() && cand.IsObject() {
		// For a candidate point, every owner point is guaranteed this
		// neighbor within the maximum distance; both metrics coincide.
		return geom.MaxDistPointRectSq(cand.Point, owner.MBR)
	}
	return e.opts.Metric.BoundSq(owner.MBR, cand.MBR)
}

// probe offers a candidate to an LPQ: the cheap MIND test runs first and
// the metric is evaluated only if the candidate survives it. The
// object/object case — the bulk of all probes during the leaf-level join
// — uses an early-abort distance computation against the bound.
func (e *engine) probe(c *lpq, cand *index.Entry) {
	e.stats.DistanceCalcs++
	bound := c.admitBound()
	if c.owner.Kind == index.ObjectEntry && cand.Kind == index.ObjectEntry {
		d, ok := geom.DistSqWithin(c.owner.Point, cand.Point, bound)
		if !ok {
			e.stats.PrunedOnProbe++
			return
		}
		c.enqueueChecked(lpqItem{e: cand, mind: d, maxd: d})
		return
	}
	mind := e.minDistUncounted(c.owner, cand)
	if mind > bound {
		e.stats.PrunedOnProbe++
		return
	}
	c.enqueueChecked(lpqItem{e: cand, mind: mind, maxd: e.maxDist(c.owner, cand)})
}

// expandAndPrune is Algorithm 4. For an object owner it runs the Gather
// Stage (emitting that owner's result); for a node owner it runs the
// Expand Stage, distributing the queued candidates over freshly created
// child LPQs (Filter Stage pruning happens inside lpq.enqueue).
//
// With observability enabled (engine.obsOn) the call is bracketed by an
// "expand" span with a nested "filter" span over the candidate drain (or
// a "gather" span for an object owner); the stage clocks in Timings
// attribute the drain to Filter and the remainder to Expand, so the
// three stage totals are disjoint.
func (e *engine) expandAndPrune(q *lpq) ([]*lpq, error) {
	if q.owner.IsObject() {
		if !e.obsOn() {
			return nil, e.gather(q)
		}
		start := time.Now()
		err := e.gather(q)
		end := time.Now()
		e.tr.Complete("gather", e.tid, start, end, "k", int64(q.k))
		if e.tm != nil {
			e.tm.Gather += end.Sub(start)
		}
		return nil, err
	}

	obsOn := e.obsOn()
	var tExpand time.Time
	if obsOn {
		tExpand = time.Now()
	}
	children, err := e.ir.Expand(q.owner)
	if err != nil {
		return nil, err
	}
	e.stats.NodesExpandedR++
	lpqcs := make([]*lpq, len(children))
	for i := range children {
		inherited := q.bound()
		if s := e.opts.BoundSeedSq; s != nil && children[i].Kind == index.ObjectEntry {
			if id := int(children[i].Object); id >= 0 && id < len(s) && s[id] < inherited {
				inherited = s[id]
			}
		}
		lpqcs[i] = e.getLPQ(&children[i], inherited, q.k, q.kb, q.monotone)
	}

	var tDrain time.Time
	if obsOn {
		tDrain = time.Now()
	}
	if !e.opts.PerObjectGather && len(children) > 0 && children[0].Kind == index.ObjectEntry {
		// The owner is a leaf of I_R: its children are the query objects
		// themselves. Drain the candidates all the way to object level
		// here, where each I_S node is expanded once and shared by every
		// object LPQ — rather than letting each object's Gather Stage
		// re-expand the same nodes (index heights need not align across
		// branches, so candidates may still be several levels up).
		if err := e.drainToObjects(q, lpqcs); err != nil {
			return nil, err
		}
	} else if err := e.drainToChildren(q, lpqcs); err != nil {
		return nil, err
	}
	var tDrainEnd time.Time
	if obsOn {
		tDrainEnd = time.Now()
	}

	out := lpqcs[:0]
	for _, c := range lpqcs {
		if c.len() > 0 {
			out = append(out, c)
		} else if c.owner.Count > 0 {
			// A child owner with data but no candidates can only happen
			// when the target index is empty below every probed entry —
			// impossible while S is non-empty. Guard anyway.
			return nil, fmt.Errorf("core: child LPQ starved for owner %v", c.owner.MBR)
		} else {
			e.putLPQ(c)
		}
	}
	if obsOn {
		end := time.Now()
		e.tr.Complete("filter", e.tid, tDrain, tDrainEnd, "kept", int64(len(out)))
		e.tr.Complete("expand", e.tid, tExpand, end, "children", int64(len(children)))
		if e.tm != nil {
			drain := tDrainEnd.Sub(tDrain)
			e.tm.Filter += drain
			e.tm.Expand += end.Sub(tExpand) - drain
		}
	}
	return out, nil
}

// discardRest accounts a terminal cut: the already-dequeued item it plus
// everything still queued in q is discarded wholesale. Node entries count
// as pruned subtrees, object entries as pruned entries. Purely a
// counting helper — the caller stops consuming the queue either way.
func (e *engine) discardRest(q *lpq, it lpqItem) {
	var nodes, objs uint64
	if it.e.IsObject() {
		objs++
	} else {
		nodes++
	}
	for _, rem := range q.items[q.head:] {
		if rem.e.IsObject() {
			objs++
		} else {
			nodes++
		}
	}
	e.stats.PrunedSubtrees += nodes
	e.stats.PrunedEntries += objs
}

// drainToChildren is the Expand Stage for an internal owner: the parent
// queue's candidates are dequeued best-first, expanded one level in I_S
// when they are nodes, and probed against every child LPQ.
func (e *engine) drainToChildren(q *lpq, lpqcs []*lpq) error {
	for {
		if err := e.checkCancel(); err != nil {
			return err
		}
		// Entries whose MIND exceeds every child's bound are useless; the
		// queue is MIND-ordered, so the first such entry ends the loop.
		maxBound := math.Inf(-1)
		for _, c := range lpqcs {
			if b := c.admitBound(); b > maxBound {
				maxBound = b
			}
		}
		it, ok := q.dequeue()
		if !ok {
			return nil
		}
		if it.mind > maxBound {
			if e.shrink != 1 {
				// Attribute the cut to approximation only when the exact
				// bounds would have kept going (computed on this cold path
				// only, never on the exact configuration).
				exact := math.Inf(-1)
				for _, c := range lpqcs {
					if b := c.slackBound(); b > exact {
						exact = b
					}
				}
				if it.mind <= exact {
					e.stats.LPQEarlyTerms++
				}
			}
			e.discardRest(q, it)
			return nil
		}
		if it.e.IsObject() {
			// An object cannot be expanded further; probe it directly.
			for _, c := range lpqcs {
				e.probe(c, it.e)
			}
			continue
		}
		cands, err := e.expandS(it.e)
		if err != nil {
			return err
		}
		e.stats.NodesExpandedS++
		for ci := range cands {
			cand := &cands[ci]
			for _, c := range lpqcs {
				e.probe(c, cand)
			}
		}
	}
}

// leafJoin is the engine's scratch state for drainToObjects: the packed
// owner coordinates and cached bounds of the leaf-level object join, the
// candidate-node work heap, and the batch-kernel gather buffers. One
// instance lives per engine (one per parallel worker) and is reset for
// each I_R leaf, so the join performs no steady-state allocations beyond
// growth of the retained buffers.
//
// The join runs in two interchangeable forms. probeOne is the scalar
// reference: one candidate against every owner, bounds updated live. The
// batch form (add/flush) gathers prefilter survivors into contiguous
// arrays and pushes whole candidate tiles through geom.DistSqBlock, then
// commits the results in candidate order against the live bounds. The
// commit pass reproduces the scalar path's decisions and counters
// exactly: during a leaf join bounds only tighten (the phase is
// enqueue-only), so a snapshot bound taken at gather or kernel time is
// always >= the live bound at commit time — a kernel early-out therefore
// implies the scalar path would have pruned too, and every committed
// distance is the full sum, accumulated in the same dimension order as
// the scalar loop, hence bit-identical.
type leafJoin struct {
	dim     int
	lpqcs   []*lpq
	leafMBR geom.Rect
	// The object/object probes of the leaf-level join dominate the whole
	// ANN computation. The owners' coordinates are packed into one flat
	// row-major matrix and their bounds cached in a parallel slice, so the
	// kernel runs over contiguous memory with an early-out distance.
	flat   []float64
	bounds []float64
	// dirty marks the stragglers of the recall-targeted selection: owners
	// excluded from the shared prefilter/cut-off bound (see
	// markStragglers). Always all-false in exact mode.
	dirty    []bool
	hasDirty bool
	// patience is the recall-targeted stopping rule of the candidate
	// drain: with patience > 0, the work-heap loop terminates once
	// sinceAdmit consecutive committed candidates failed every owner's
	// admission test (and every owner holds its full k). The candidate
	// stream arrives best-first by MIND to the leaf, so admissions are
	// front-loaded and a long admission drought means the expected
	// marginal recall of the remaining stream has fallen below target.
	// 0 disables the rule (exact mode).
	patience   int
	sinceAdmit int
	// maxOwnerBound caches max(bounds) over the non-straggler owners;
	// maxOwnerIdx is its argmax, so a tightening of any other owner skips
	// the O(owners) rescan. In exact mode no owner is a straggler, so this
	// is simply max(bounds).
	maxOwnerBound float64
	maxOwnerIdx   int
	work          pq.Heap[*index.Entry]
	stats         *Stats
	sched         *SchedStats

	// Batch gather buffers: candidates surviving the snapshot prefilter,
	// their packed coordinates, and their precomputed leaf-MBR distances
	// (re-checked against the live bound at commit).
	candEnts []*index.Entry
	candFlat []float64
	candPre  []float64
	block    []float64
}

// reset points the scratch at a new leaf owner and its object LPQs.
func (j *leafJoin) reset(dim int, q *lpq, lpqcs []*lpq, stats *Stats, sched *SchedStats) {
	j.dim = dim
	j.lpqcs = lpqcs
	j.leafMBR = q.owner.MBR
	j.flat = j.flat[:0]
	j.bounds = append(j.bounds[:0], make([]float64, len(lpqcs))...)
	j.dirty = append(j.dirty[:0], make([]bool, len(lpqcs))...)
	j.hasDirty = false
	j.patience = 0
	j.sinceAdmit = 0
	for i, c := range lpqcs {
		j.flat = append(j.flat, c.owner.Point...)
		j.bounds[i] = c.admitBound()
	}
	j.refreshMaxOwnerBound()
	j.work.Reset()
	j.stats = stats
	j.sched = sched
	j.clearBatch()
}

// markStragglers is the recall-targeted leaf selection: with
// 0 < rt < 1, the ceil(rt x m) owners with the tightest admission bounds
// are served exactly, and the remaining owners — the stragglers, whose
// wide bounds would otherwise force every far candidate through the
// kernel for the whole leaf — are excluded from the shared prefilter and
// cut-off bound. A straggler still admits every candidate that survives
// the clean owners' prefilter (its per-owner bound in the kernel is
// untouched), so it degrades gracefully instead of starving; and only
// owners already holding their full k candidates are eligible, so every
// owner still emits k results. Per leaf, at least ceil(rt x m) owners
// receive results identical to the exact drain, which is the per-leaf
// recall floor rt.
//
// Called at the start of the heap-drain phase, not at reset: the
// selection needs live bounds, and most owners only reach k admitted
// candidates once the leaf's inherited candidate list has been
// distributed.
func (j *leafJoin) markStragglers(lpqcs []*lpq, rt float64) {
	if rt <= 0 || rt >= 1 {
		return
	}
	want := len(lpqcs) - int(math.Ceil(rt*float64(len(lpqcs))))
	for ; want > 0; want-- {
		worst := -1
		for i, c := range lpqcs {
			if j.dirty[i] || c.len() < c.k {
				continue
			}
			if worst < 0 || j.bounds[i] > j.bounds[worst] {
				worst = i
			}
		}
		if worst < 0 {
			break
		}
		j.dirty[worst] = true
		j.hasDirty = true
	}
	if j.hasDirty {
		j.refreshMaxOwnerBound()
	}
}

// patienceFor converts the recall target into the stopping rule's
// patience: the number of consecutive admission-free candidates after
// which the drain gives up on the remaining stream. slots is the leaf's
// total result capacity (owners x k): the shared stream serves every
// owner at once, so the admission drought that licenses stopping must be
// measured against all slots the stream could still improve, not one
// owner's k. Stopping after slots/(1-rt) dry candidates means the
// observed marginal admission rate has dropped below (1-rt)/slots per
// candidate — at that rate, the remaining stream's expected contribution
// to the leaf's results is below the tolerated 1-rt fraction. rt -> 1
// makes the patience unbounded (exact); rt <= 0 disables the rule.
func patienceFor(rt float64, slots int) int {
	if rt <= 0 || rt >= 1 {
		return 0
	}
	return int(math.Ceil(float64(slots) / (1 - rt)))
}

// allFull reports whether every owner already holds its full k
// candidates — the stopping rule's non-starvation guard.
func (j *leafJoin) allFull() bool {
	for _, c := range j.lpqcs {
		if c.len() < c.k {
			return false
		}
	}
	return true
}

// finish drops the references held by the scratch so recycled LPQs and
// evicted cache slices are not pinned between leaves.
func (j *leafJoin) finish() {
	j.lpqcs = nil
	j.leafMBR = geom.Rect{}
	j.work.Reset()
	j.stats = nil
	j.sched = nil
	j.clearBatch()
}

func (j *leafJoin) clearBatch() {
	for i := range j.candEnts {
		j.candEnts[i] = nil
	}
	j.candEnts = j.candEnts[:0]
	j.candFlat = j.candFlat[:0]
	j.candPre = j.candPre[:0]
}

func (j *leafJoin) refreshMaxOwnerBound() {
	j.maxOwnerBound = math.Inf(-1)
	j.maxOwnerIdx = -1
	for i, b := range j.bounds {
		if j.dirty[i] {
			continue
		}
		if b > j.maxOwnerBound {
			j.maxOwnerBound = b
			j.maxOwnerIdx = i
		}
	}
}

// tighten records owner i's new bound after an enqueue. Bounds never grow
// during a leaf join, so the cached max only needs a rescan when the
// argmax owner itself tightened.
func (j *leafJoin) tighten(i int, b float64) {
	j.bounds[i] = b
	if i == j.maxOwnerIdx {
		j.refreshMaxOwnerBound()
	}
}

// probeOne offers one candidate object to every owner of the leaf — the
// scalar reference path the batch form is tested against.
func (j *leafJoin) probeOne(cand *index.Entry) {
	cp := cand.Point
	// Pre-filter against the leaf MBR: a candidate farther from the whole
	// leaf than every owner's bound cannot survive any per-owner probe.
	// The vast majority of candidates fall here for the price of a single
	// distance evaluation.
	j.stats.DistanceCalcs++
	if geom.MinDistPointRectSq(cp, j.leafMBR) > j.maxOwnerBound {
		j.stats.PrunedOnProbe += uint64(len(j.lpqcs))
		j.sinceAdmit++
		return
	}
	j.stats.DistanceCalcs += uint64(len(j.lpqcs))
	admitted := false
	for i := range j.lpqcs {
		base := j.flat[i*j.dim : (i+1)*j.dim]
		limit := j.bounds[i]
		var s float64
		pruned := false
		for d := 0; d < j.dim; d++ {
			diff := base[d] - cp[d]
			s += diff * diff
			if s > limit {
				pruned = true
				break
			}
		}
		if pruned {
			j.stats.PrunedOnProbe++
			continue
		}
		c := j.lpqcs[i]
		c.enqueueChecked(lpqItem{e: cand, mind: s, maxd: s})
		j.tighten(i, c.admitBound())
		admitted = true
	}
	if admitted {
		j.sinceAdmit = 0
	} else {
		j.sinceAdmit++
	}
}

// add runs the snapshot prefilter on one candidate and gathers survivors
// into the batch buffers, flushing a full tile through the kernel. The
// prefilter bound may be stale by up to one tile (looser than live), so a
// reject here is always also a live reject; survivors are re-checked
// against the live bound when their tile commits.
func (j *leafJoin) add(cand *index.Entry) {
	cp := cand.Point
	j.stats.DistanceCalcs++
	pre := geom.MinDistPointRectSq(cp, j.leafMBR)
	if pre > j.maxOwnerBound {
		j.stats.PrunedOnProbe += uint64(len(j.lpqcs))
		j.sinceAdmit++
		return
	}
	j.gatherCand(cand, cp, pre)
}

func (j *leafJoin) gatherCand(cand *index.Entry, cp geom.Point, pre float64) {
	j.candEnts = append(j.candEnts, cand)
	j.candFlat = append(j.candFlat, cp...)
	j.candPre = append(j.candPre, pre)
	if len(j.candEnts) >= geom.BlockCandTile {
		j.flush()
	}
}

// flush pushes the gathered candidate tile through the blocked distance
// kernel and commits the results in candidate order. Owner bounds used as
// kernel early-out limits are a snapshot taken here; the commit loop
// re-reads the live bounds, which by the tightening-only argument above
// can only prune more — and a pair the kernel aborted stored a partial
// sum already above its snapshot limit, hence above the live one too.
func (j *leafJoin) flush() {
	n := len(j.candEnts)
	if n == 0 {
		return
	}
	m := len(j.lpqcs)
	need := n * m
	if cap(j.block) < need {
		j.block = make([]float64, need)
	}
	blk := j.block[:need]
	earlyOuts := geom.DistSqBlock(j.flat, m, j.candFlat, n, j.dim, j.bounds, blk)
	if j.sched != nil {
		j.sched.KernelBlocks++
		j.sched.KernelPairs += uint64(need)
		j.sched.KernelEarlyOuts += uint64(earlyOuts)
	}
	for k := 0; k < n; k++ {
		// Re-run the prefilter against the now-live max bound: identical
		// to the scalar path's live decision for this candidate.
		if j.candPre[k] > j.maxOwnerBound {
			j.stats.PrunedOnProbe += uint64(m)
			j.candEnts[k] = nil
			j.sinceAdmit++
			continue
		}
		j.stats.DistanceCalcs += uint64(m)
		row := blk[k*m : k*m+m]
		cand := j.candEnts[k]
		admitted := false
		for i := 0; i < m; i++ {
			if row[i] > j.bounds[i] {
				j.stats.PrunedOnProbe++
				continue
			}
			c := j.lpqcs[i]
			c.enqueueChecked(lpqItem{e: cand, mind: row[i], maxd: row[i]})
			j.tighten(i, c.admitBound())
			admitted = true
		}
		if admitted {
			j.sinceAdmit = 0
		} else {
			j.sinceAdmit++
		}
		j.candEnts[k] = nil
	}
	j.candEnts = j.candEnts[:0]
	j.candFlat = j.candFlat[:0]
	j.candPre = j.candPre[:0]
}

// probeAll offers every candidate of a fully expanded leaf node through
// the batch path. Candidates are read by index over the shared slice; an
// entry pointer is materialised only for prefilter survivors.
func (j *leafJoin) probeAll(cands []index.Entry) {
	m := uint64(len(j.lpqcs))
	for ci := range cands {
		cp := cands[ci].Point
		j.stats.DistanceCalcs++
		pre := geom.MinDistPointRectSq(cp, j.leafMBR)
		if pre > j.maxOwnerBound {
			j.stats.PrunedOnProbe += m
			j.sinceAdmit++
			continue
		}
		j.gatherCand(&cands[ci], cp, pre)
	}
	j.flush()
}

// drainToObjects distributes the candidates of a leaf owner's LPQ over
// the per-object child LPQs, expanding candidate nodes (best-first by
// MIND to the leaf owner) until only objects remain. Nodes whose MIND
// exceeds every object's bound are discarded along with everything
// farther.
func (e *engine) drainToObjects(q *lpq, lpqcs []*lpq) error {
	j := &e.join
	j.reset(e.ir.Dim(), q, lpqcs, e.stats, &e.sched)
	defer j.finish()
	for {
		it, ok := q.dequeue()
		if !ok {
			break
		}
		if it.e.Kind == index.ObjectEntry {
			j.add(it.e)
		} else {
			j.work.Push(it.mind, it.e)
		}
	}
	// Every bound-dependent decision below (the heap cut-off and the
	// node-push pruning) must see bounds that reflect all earlier probes,
	// exactly as the scalar path would — so the gathered tile is flushed
	// before each work-heap pop.
	j.flush()
	j.markStragglers(lpqcs, e.opts.RecallTarget)
	j.patience = patienceFor(e.opts.RecallTarget, q.k*len(lpqcs))
	j.sinceAdmit = 0
	for j.work.Len() > 0 {
		if err := e.checkCancel(); err != nil {
			return err
		}
		if j.patience > 0 && j.sinceAdmit >= j.patience && j.allFull() {
			// Recall-targeted stop: the drain has committed patience
			// candidates in a row without a single admission anywhere in
			// the leaf. The remaining (farther) subtrees are abandoned.
			e.stats.LPQEarlyTerms++
			e.stats.PrunedSubtrees += uint64(j.work.Len())
			break
		}
		item, _ := j.work.Pop()
		maxBound := j.maxOwnerBound
		if item.Key > maxBound {
			if e.shrink != 1 || j.hasDirty {
				// bounds[] hold shrunk admission bounds over the clean
				// owners only; the cut is approx-attributable when the
				// exact all-owner bounds disagree.
				exact := math.Inf(-1)
				for _, c := range lpqcs {
					if b := c.slackBound(); b > exact {
						exact = b
					}
				}
				if item.Key <= exact {
					e.stats.LPQEarlyTerms++
				}
			}
			e.stats.PrunedSubtrees += 1 + uint64(j.work.Len())
			break
		}
		cands, err := e.expandS(item.Value)
		if err != nil {
			return err
		}
		e.stats.NodesExpandedS++
		allObjects := true
		for ci := range cands {
			if cands[ci].Kind != index.ObjectEntry {
				allObjects = false
				break
			}
		}
		if allObjects {
			j.probeAll(cands)
			continue
		}
		for ci := range cands {
			cand := &cands[ci]
			if cand.Kind == index.ObjectEntry {
				j.add(cand)
			} else {
				e.stats.DistanceCalcs++
				mind := e.minDistUncounted(q.owner, cand)
				if mind <= maxBound {
					j.work.Push(mind, cand)
				} else {
					e.stats.PrunedOnProbe++
				}
			}
		}
		j.flush()
	}
	return nil
}

// gather is the Gather Stage: the owner is a data object r, and the LPQ
// is drained best-first until the k nearest objects are known.
func (e *engine) gather(q *lpq) error {
	r := q.owner
	k := q.k
	if e.gatherBest == nil || e.gatherBest.K() != k {
		e.gatherBest = pq.NewKBest[*index.Entry](k)
	} else {
		e.gatherBest.Reset()
	}
	best := e.gatherBest
	for {
		if err := e.checkCancel(); err != nil {
			return err
		}
		it, ok := q.dequeue()
		if !ok {
			break
		}
		if best.Full() {
			// MIND-ordered queue: nothing closer than it.mind remains. In
			// approximate mode the cut-off is Worst x shrink — stopping once
			// the best possible improvement is within (1+eps) of the current
			// k-th best (the Arya et al. rule). Guarded on Full(), so the
			// early stop can never leave fewer than k results.
			w := best.Worst()
			if q.shrink != 1 {
				w *= q.shrink
			}
			if it.mind >= w {
				if q.shrink != 1 && it.mind < best.Worst() {
					e.stats.LPQEarlyTerms++
				}
				e.discardRest(q, it)
				break
			}
		}
		if it.e.IsObject() {
			best.Add(it.mind, it.e) // mind == exact squared distance
			continue
		}
		cands, err := e.expandS(it.e)
		if err != nil {
			return err
		}
		e.stats.NodesExpandedS++
		for ci := range cands {
			cand := &cands[ci]
			mind := e.minDist(r, cand)
			if best.Full() {
				w := best.Worst()
				if q.shrink != 1 {
					w *= q.shrink
				}
				if mind >= w {
					e.stats.PrunedOnProbe++
					continue
				}
			}
			if mind > q.admitBound() {
				e.stats.PrunedOnProbe++
				continue
			}
			var maxd float64
			if cand.IsObject() {
				maxd = mind
			} else {
				maxd = e.maxDist(r, cand)
			}
			q.enqueueChecked(lpqItem{e: cand, mind: mind, maxd: maxd})
		}
	}

	e.gatherTop = best.AppendItems(e.gatherTop[:0])
	items := e.gatherTop
	neighbors := make([]Neighbor, 0, e.opts.K)
	selfSeen := false
	for _, it := range items {
		if e.opts.ExcludeSelf && !selfSeen && it.Value.Object == r.Object {
			selfSeen = true
			continue
		}
		if len(neighbors) == e.opts.K {
			break
		}
		neighbors = append(neighbors, Neighbor{
			Object: it.Value.Object,
			Point:  it.Value.Point,
			Dist:   math.Sqrt(it.Key),
		})
	}
	e.stats.Results++
	return e.emit(Result{Object: r.Object, Point: r.Point, Neighbors: neighbors})
}

// emitEmpty walks the query index emitting empty results (used when the
// target index holds no points).
func (e *engine) emitEmpty(entry *index.Entry) error {
	if err := e.checkCancel(); err != nil {
		return err
	}
	if entry.IsObject() {
		e.stats.Results++
		return e.emit(Result{Object: entry.Object, Point: entry.Point})
	}
	if entry.Count == 0 {
		return nil
	}
	children, err := e.ir.Expand(entry)
	if err != nil {
		return err
	}
	for i := range children {
		if err := e.emitEmpty(&children[i]); err != nil {
			return err
		}
	}
	return nil
}
