package hnn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/bruteforce"
	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/storage"
)

const tol = 1e-9

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMemStore(), frames)
}

func uniformPoints(rng *rand.Rand, n, dim int, lim float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * lim
		}
		pts[i] = p
	}
	return pts
}

func checkAgainstBrute(t *testing.T, rPts, sPts []geom.Point, opts Options) Stats {
	t.Helper()
	pool := newPool(1024)
	var got []core.Result
	stats, err := Join(FromPoints(rPts), FromPoints(sPts), pool, opts, func(r core.Result) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.PinnedFrames() != 0 {
		t.Fatal("pinned frame leak")
	}
	k := opts.K
	if k <= 0 {
		k = 1
	}
	want := bruteforce.AkNN(bruteforce.FromPoints(rPts), bruteforce.FromPoints(sPts), k, opts.ExcludeSelf)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
	for i := range want {
		g, w := got[i], want[i]
		if g.Object != w.Object {
			t.Fatalf("result %d for object %d, want %d", i, g.Object, w.Object)
		}
		if len(g.Neighbors) != len(w.Neighbors) {
			t.Fatalf("object %d: %d neighbors, want %d", g.Object, len(g.Neighbors), len(w.Neighbors))
		}
		for n := range w.Neighbors {
			if math.Abs(g.Neighbors[n].Dist-w.Neighbors[n].Dist) > tol {
				t.Fatalf("object %d neighbor %d: dist %g, want %g",
					g.Object, n, g.Neighbors[n].Dist, w.Neighbors[n].Dist)
			}
		}
	}
	return stats
}

func TestJoinMatchesBrute2D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rPts := uniformPoints(rng, 300, 2, 100)
	sPts := uniformPoints(rng, 400, 2, 100)
	for _, k := range []int{1, 5} {
		checkAgainstBrute(t, rPts, sPts, Options{K: k})
	}
}

func TestJoinMatchesBrute3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rPts := uniformPoints(rng, 200, 3, 50)
	sPts := uniformPoints(rng, 250, 3, 50)
	checkAgainstBrute(t, rPts, sPts, Options{K: 3})
}

func TestJoinSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 300, 2, 100)
	checkAgainstBrute(t, pts, pts, Options{K: 2, ExcludeSelf: true})
}

func TestJoinSkewedData(t *testing.T) {
	// The known weakness: a dense cluster in one cell. Results must still
	// be exact.
	rng := rand.New(rand.NewSource(4))
	var pts []geom.Point
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 0.01, rng.Float64() * 0.01})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 100, rng.Float64() * 100})
	}
	checkAgainstBrute(t, pts, pts, Options{ExcludeSelf: true})
}

func TestJoinTinyInputs(t *testing.T) {
	checkAgainstBrute(t, []geom.Point{{1, 1}}, []geom.Point{{2, 2}}, Options{})
	checkAgainstBrute(t, []geom.Point{{1, 1}}, []geom.Point{{2, 2}, {3, 3}}, Options{K: 5})
	// Identical coordinates everywhere (degenerate bounds).
	same := []geom.Point{{5, 5}, {5, 5}, {5, 5}}
	checkAgainstBrute(t, same, same, Options{ExcludeSelf: true})
}

func TestJoinEmpty(t *testing.T) {
	pool := newPool(16)
	var results int
	_, err := Join(FromPoints(nil), FromPoints([]geom.Point{{1, 1}}), pool, Options{},
		func(core.Result) error { results++; return nil })
	if err != nil || results != 0 {
		t.Fatalf("empty R: %v results=%d", err, results)
	}
	_, err = Join(FromPoints([]geom.Point{{1, 1}}), FromPoints(nil), pool, Options{},
		func(core.Result) error { results++; return nil })
	if err != nil || results != 1 {
		t.Fatalf("empty S: %v results=%d", err, results)
	}
}

func TestJoinDimMismatch(t *testing.T) {
	pool := newPool(16)
	_, err := Join(FromPoints([]geom.Point{{1, 2}}), FromPoints([]geom.Point{{1, 2, 3}}), pool,
		Options{}, func(core.Result) error { return nil })
	if err == nil {
		t.Fatal("expected dimensionality error")
	}
}

func TestRingEnumeration(t *testing.T) {
	g := &grid{bounds: geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), cells: 8, dim: 2}
	counts := map[int]int{}
	for ring := 0; ring < 4; ring++ {
		n := 0
		err := g.forEachRingCell([]int{4, 4}, ring, func(cell []int) error {
			// Every visited cell must be at exactly Chebyshev distance ring.
			d := 0
			for i, v := range cell {
				home := []int{4, 4}[i]
				if diff := v - home; diff > d {
					d = diff
				} else if -diff > d {
					d = -diff
				}
			}
			if d != ring {
				t.Fatalf("cell %v at Chebyshev %d visited for ring %d", cell, d, ring)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[ring] = n
	}
	// Interior home cell: ring 0 has 1 cell, ring r has 8r cells.
	if counts[0] != 1 || counts[1] != 8 || counts[2] != 16 || counts[3] != 24 {
		t.Fatalf("ring cell counts = %v", counts)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := uniformPoints(rng, 500, 2, 100)
	stats := checkAgainstBrute(t, pts, pts, Options{ExcludeSelf: true})
	if stats.Cells < 1 || stats.BucketsSpilled == 0 || stats.BucketReads == 0 || stats.DistCalcs == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}
