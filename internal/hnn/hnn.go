// Package hnn implements the hash-based ANN baseline (HNN) of Zhang et
// al. (SSDBM 2004), for the case where neither dataset carries an index:
// both datasets are spatially hashed onto a regular grid, the target
// cells are spilled to paged storage, and each query point runs a ring
// search over the grid — its own cell first, then cells at increasing
// Chebyshev ring distance, until the k-th candidate beats the next ring's
// minimum distance.
//
// The paper notes (and our ablation confirms) that building an index and
// running BNN is usually faster, and that spatial hashing is vulnerable
// to skew: a dense cluster lands in one cell whose bucket degenerates to
// a linear scan.
package hnn

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/obs"
	"allnn/internal/pq"
	"allnn/internal/storage"
)

// Options configures an HNN run.
type Options struct {
	// K is the number of neighbors per query point (0 means 1).
	K int
	// TargetPerCell sizes the grid: cells are chosen so the average
	// target cell holds about this many points (0 means 64).
	TargetPerCell int
	// ExcludeSelf skips neighbors with the query point's own ObjectID.
	ExcludeSelf bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.TargetPerCell <= 0 {
		o.TargetPerCell = 64
	}
	return o
}

// Stats counts the work performed.
type Stats struct {
	Cells          int    // grid cells per dimension
	BucketsSpilled uint64 // non-empty target buckets written to pages
	BucketReads    uint64 // bucket fetches during the search (logical)
	DistCalcs      uint64
	MaxRing        int // widest ring any query had to expand to
}

// AddTo accumulates the run into a metrics registry under the "hnn"
// family (see DESIGN.md §10). Cells and MaxRing are levels, not
// monotonic counts, and publish as gauges.
func (s Stats) AddTo(r *obs.Registry) {
	r.Counter("hnn.buckets_spilled").Add(s.BucketsSpilled)
	r.Counter("hnn.bucket_reads").Add(s.BucketReads)
	r.Counter("hnn.dist_calcs").Add(s.DistCalcs)
	r.Gauge("hnn.cells").Set(int64(s.Cells))
	r.Gauge("hnn.max_ring").Set(int64(s.MaxRing))
}

// Dataset pairs ids with points.
type Dataset struct {
	IDs    []index.ObjectID
	Points []geom.Point
}

// FromPoints wraps pts with ids 0..n-1.
func FromPoints(pts []geom.Point) Dataset {
	ids := make([]index.ObjectID, len(pts))
	for i := range ids {
		ids[i] = index.ObjectID(i)
	}
	return Dataset{IDs: ids, Points: pts}
}

// Join computes, for every point of r, its k nearest neighbors in s.
// Target buckets are spilled to pages allocated from pool's store and
// read back through the pool during the search.
func Join(r, s Dataset, pool *storage.BufferPool, opts Options, emit func(core.Result) error) (Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if len(r.Points) == 0 {
		return stats, nil
	}
	if len(s.Points) == 0 {
		for i := range r.Points {
			if err := emit(core.Result{Object: r.IDs[i], Point: r.Points[i]}); err != nil {
				return stats, err
			}
		}
		return stats, nil
	}
	dim := len(r.Points[0])
	if len(s.Points[0]) != dim {
		return stats, fmt.Errorf("hnn: dimensionality mismatch: %d vs %d", dim, len(s.Points[0]))
	}

	// Grid over the union bounds; cells per dimension chosen so the mean
	// occupied cell holds about TargetPerCell points.
	bounds := geom.EmptyRect(dim)
	for _, p := range r.Points {
		bounds.ExpandPoint(p)
	}
	for _, p := range s.Points {
		bounds.ExpandPoint(p)
	}
	cells := int(math.Round(math.Pow(float64(len(s.Points))/float64(opts.TargetPerCell), 1/float64(dim))))
	if cells < 1 {
		cells = 1
	}
	if cells > 1024 {
		cells = 1024
	}
	stats.Cells = cells
	g := &grid{bounds: bounds, cells: cells, dim: dim}

	// Hash the target points into buckets and spill them to pages.
	bucketPoints := map[uint64][]int{}
	for i, p := range s.Points {
		key := g.key(g.cellOf(p))
		bucketPoints[key] = append(bucketPoints[key], i)
	}
	buckets := make(map[uint64]*bucket, len(bucketPoints))
	for key, idxs := range bucketPoints {
		b, err := spillBucket(pool, s, idxs)
		if err != nil {
			return stats, err
		}
		buckets[key] = b
		stats.BucketsSpilled++
	}

	// Process the query points in cell order for bucket locality.
	order := make([]int, len(r.Points))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.key(g.cellOf(r.Points[order[a]])) < g.key(g.cellOf(r.Points[order[b]]))
	})

	for _, i := range order {
		res, err := g.search(pool, buckets, r.IDs[i], r.Points[i], opts, &stats)
		if err != nil {
			return stats, err
		}
		if err := emit(res); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// grid maps points to integer cells.
type grid struct {
	bounds geom.Rect
	cells  int
	dim    int
}

func (g *grid) cellOf(p geom.Point) []int {
	c := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		extent := g.bounds.Hi[d] - g.bounds.Lo[d]
		if extent <= 0 {
			continue
		}
		v := int(float64(g.cells) * (p[d] - g.bounds.Lo[d]) / extent)
		if v >= g.cells {
			v = g.cells - 1
		}
		if v < 0 {
			v = 0
		}
		c[d] = v
	}
	return c
}

// key packs a cell coordinate into a map key (10 bits per dimension, the
// 1024-cell cap above keeps this exact).
func (g *grid) key(cell []int) uint64 {
	var k uint64
	for _, v := range cell {
		k = k<<10 | uint64(v)
	}
	return k
}

// cellRect returns the spatial extent of a cell.
func (g *grid) cellRect(cell []int) geom.Rect {
	lo := make(geom.Point, g.dim)
	hi := make(geom.Point, g.dim)
	for d := 0; d < g.dim; d++ {
		extent := g.bounds.Hi[d] - g.bounds.Lo[d]
		lo[d] = g.bounds.Lo[d] + extent*float64(cell[d])/float64(g.cells)
		hi[d] = g.bounds.Lo[d] + extent*float64(cell[d]+1)/float64(g.cells)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// search runs the expanding ring search for one query point.
func (g *grid) search(pool *storage.BufferPool, buckets map[uint64]*bucket,
	id index.ObjectID, pt geom.Point, opts Options, stats *Stats) (core.Result, error) {

	effK := opts.K
	if opts.ExcludeSelf {
		effK++
	}
	best := pq.NewKBest[index.QueryResult](effK)
	home := g.cellOf(pt)

	for ring := 0; ring < g.cells; ring++ {
		// Every cell of this ring is at Chebyshev distance `ring` from
		// home; if even the nearest point of the nearest ring cell is
		// beyond the current k-th candidate, no later ring can help.
		ringVisited := false
		stop := best.Full()
		err := g.forEachRingCell(home, ring, func(cell []int) error {
			ringVisited = true
			rect := g.cellRect(cell)
			if best.Full() && geom.MinDistPointRectSq(pt, rect) >= best.Worst() {
				return nil
			}
			stop = false
			b, ok := buckets[g.key(cell)]
			if !ok {
				return nil
			}
			stats.BucketReads++
			objs, err := b.load(pool)
			if err != nil {
				return err
			}
			for _, o := range objs {
				if opts.ExcludeSelf && o.id == id {
					continue
				}
				stats.DistCalcs++
				if d, ok := geom.DistSqWithin(pt, o.pt, best.Worst()); ok {
					best.Add(d, index.QueryResult{Object: o.id, Point: o.pt, DistSq: d})
				}
			}
			return nil
		})
		if err != nil {
			return core.Result{}, err
		}
		if ring > stats.MaxRing {
			stats.MaxRing = ring
		}
		if !ringVisited || (stop && best.Full() && ring > 0) {
			break
		}
	}

	items := best.Items()
	neighbors := make([]core.Neighbor, 0, opts.K)
	selfSeen := false
	for _, it := range items {
		if opts.ExcludeSelf && !selfSeen && it.Value.Object == id {
			selfSeen = true
			continue
		}
		if len(neighbors) == opts.K {
			break
		}
		neighbors = append(neighbors, core.Neighbor{
			Object: it.Value.Object,
			Point:  it.Value.Point,
			Dist:   math.Sqrt(it.Key),
		})
	}
	return core.Result{Object: id, Point: pt, Neighbors: neighbors}, nil
}

// forEachRingCell visits every in-bounds cell at Chebyshev distance ring
// from home.
func (g *grid) forEachRingCell(home []int, ring int, fn func([]int) error) error {
	cell := make([]int, g.dim)
	var rec func(d int, onBoundary bool) error
	rec = func(d int, onBoundary bool) error {
		if d == g.dim {
			if onBoundary || ring == 0 {
				return fn(cell)
			}
			return nil
		}
		for off := -ring; off <= ring; off++ {
			v := home[d] + off
			if v < 0 || v >= g.cells {
				continue
			}
			cell[d] = v
			if err := rec(d+1, onBoundary || off == -ring || off == ring); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, false)
}

// --- spilled buckets ----------------------------------------------------------

// bucket is a target cell's points spilled to one or more pages.
// Page layout: uint16 count, 2 bytes pad, then count x (uint64 id + dim
// float64 coordinates); pages of one bucket are chained implicitly by the
// pages slice.
type bucket struct {
	dim   int
	pages []storage.PageID
}

func bucketCapacity(dim int) int {
	return (storage.PageSize - 4) / (8 + 8*dim)
}

type obj struct {
	id index.ObjectID
	pt geom.Point
}

func spillBucket(pool *storage.BufferPool, s Dataset, idxs []int) (*bucket, error) {
	dim := len(s.Points[0])
	capacity := bucketCapacity(dim)
	b := &bucket{dim: dim}
	for start := 0; start < len(idxs); start += capacity {
		end := start + capacity
		if end > len(idxs) {
			end = len(idxs)
		}
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		data := f.Data()
		binary.LittleEndian.PutUint16(data, uint16(end-start))
		off := 4
		for _, i := range idxs[start:end] {
			binary.LittleEndian.PutUint64(data[off:], uint64(s.IDs[i]))
			off += 8
			for d := 0; d < dim; d++ {
				binary.LittleEndian.PutUint64(data[off:], math.Float64bits(s.Points[i][d]))
				off += 8
			}
		}
		f.MarkDirty()
		pid := f.ID()
		f.Release()
		b.pages = append(b.pages, pid)
	}
	return b, nil
}

func (b *bucket) load(pool *storage.BufferPool) ([]obj, error) {
	var out []obj
	for _, pid := range b.pages {
		f, err := pool.Get(pid)
		if err != nil {
			return nil, err
		}
		data := f.Data()
		count := int(binary.LittleEndian.Uint16(data))
		off := 4
		for i := 0; i < count; i++ {
			o := obj{
				id: index.ObjectID(binary.LittleEndian.Uint64(data[off:])),
				pt: make(geom.Point, b.dim),
			}
			off += 8
			for d := 0; d < b.dim; d++ {
				o.pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			out = append(out, o)
		}
		f.Release()
	}
	return out, nil
}
