package index

import (
	"unsafe"

	"allnn/internal/nodecache"
	"allnn/internal/storage"
)

// NodeCache is the decoded-node cache shared by the index implementations:
// it maps a page id to the immutable entry slice produced by expanding that
// node. Both MBRQT and the R*-tree key it by the value they already store in
// Entry.Child, so the engine's Expand(e) path becomes a cache lookup.
//
// Cached slices and everything they reference (points, MBR coordinate
// slabs) are shared between every Get of the same page and must never be
// mutated.
type NodeCache = nodecache.Cache[[]Entry]

// DefaultNodeCacheBytes is the budget used when a caller enables caching
// without choosing a size. 32 MiB holds the decoded hot set of the paper's
// full-scale datasets with room to spare, while staying small next to the
// raw data.
const DefaultNodeCacheBytes = 32 << 20

// NewNodeCache creates a decoded-node cache bounded to maxBytes
// (DefaultNodeCacheBytes when maxBytes is 0).
func NewNodeCache(maxBytes int64) *NodeCache {
	if maxBytes == 0 {
		maxBytes = DefaultNodeCacheBytes
	}
	return nodecache.New[[]Entry](maxBytes)
}

// NewNodeCacheHinted is NewNodeCache with an expected-concurrent-readers
// hint: the cache's shard count is sized to cover that many parallel
// workers (see nodecache.ShardsFor). The engine uses this when attaching
// caches for a parallel run.
func NewNodeCacheHinted(maxBytes int64, readers int) *NodeCache {
	if maxBytes == 0 {
		maxBytes = DefaultNodeCacheBytes
	}
	return nodecache.NewWithHint[[]Entry](maxBytes, readers)
}

// NodeCacher is implemented by index trees that can expand through a
// decoded-node cache. The engine attaches a cache before a run (sharing one
// cache between trees over the same store) and reads its stats after.
type NodeCacher interface {
	// SetNodeCache attaches the cache used by Expand; nil detaches it.
	SetNodeCache(c *NodeCache)
	// NodeCacheRef returns the currently attached cache (nil when none).
	NodeCacheRef() *NodeCache
}

// entryFixedSize is the resident size of the Entry struct itself.
const entryFixedSize = int64(unsafe.Sizeof(Entry{}))

// EntriesFootprint reports the resident bytes of a decoded entry slice:
// the slice backing array plus the coordinate slabs its rects and points
// reference. Entries within a node share slabs, so footprint is counted
// once per distinct backing array — in practice each decoded node carries
// one packed coordinate slab per field, and counting per-entry float
// lengths overestimates only when entries alias, which is the safe
// direction for a byte budget.
func EntriesFootprint(entries []Entry) int64 {
	b := entryFixedSize * int64(cap(entries))
	for i := range entries {
		e := &entries[i]
		b += 8 * int64(len(e.MBR.Lo)+len(e.MBR.Hi)+len(e.Point))
	}
	return b
}

// CachePut stores a freshly decoded entry slice under id, computing its
// footprint. It is a no-op on a nil cache.
func CachePut(c *NodeCache, id storage.PageID, entries []Entry) {
	if c == nil {
		return
	}
	c.Put(id, entries, EntriesFootprint(entries))
}
