package index_test

// The generic query helpers are exercised against both tree
// implementations; the package-external test avoids an import cycle with
// the index implementations.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

func buildTrees(t *testing.T, pts []geom.Point) map[string]index.Tree {
	t.Helper()
	qt, err := mbrqt.BulkLoad(storage.NewBufferPool(storage.NewMemStore(), 1024), pts, nil, mbrqt.Config{BucketCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rstar.BulkLoad(storage.NewBufferPool(storage.NewMemStore(), 1024), pts, nil, rstar.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]index.Tree{"mbrqt": qt, "rstar": rt}
}

func TestGenericRangeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	rect := geom.NewRect(geom.Point{20, 20}, geom.Point{60, 70})
	var want []int
	for i, p := range pts {
		if rect.Contains(p) {
			want = append(want, i)
		}
	}
	for name, tree := range buildTrees(t, pts) {
		res, err := index.RangeSearch(tree, rect)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(res))
		for i, r := range res {
			got[i] = int(r.Object)
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("%s: found %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
}

func TestGenericNearestNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	q := geom.Point{5, 5, 5}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = geom.DistSq(q, p)
	}
	sort.Float64s(dists)
	for name, tree := range buildTrees(t, pts) {
		for _, k := range []int{1, 7, 300, 1000} {
			res, err := index.NearestNeighbors(tree, q, k)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := k
			if wantLen > len(pts) {
				wantLen = len(pts)
			}
			if len(res) != wantLen {
				t.Fatalf("%s k=%d: got %d results", name, k, len(res))
			}
			for i, r := range res {
				if math.Abs(r.DistSq-dists[i]) > 1e-9 {
					t.Fatalf("%s k=%d: result %d dist %g, want %g", name, k, i, r.DistSq, dists[i])
				}
			}
		}
	}
}

func TestGenericQueriesZeroK(t *testing.T) {
	pts := []geom.Point{{1, 1}}
	for name, tree := range buildTrees(t, pts) {
		res, err := index.NearestNeighbors(tree, geom.Point{0, 0}, 0)
		if err != nil || res != nil {
			t.Fatalf("%s: k=0 should return nothing: %v %v", name, res, err)
		}
	}
}

func TestEntryIsObject(t *testing.T) {
	obj := index.Entry{Kind: index.ObjectEntry}
	node := index.Entry{Kind: index.NodeEntry}
	if !obj.IsObject() || node.IsObject() {
		t.Fatal("Entry.IsObject misclassifies")
	}
}
