package index

import (
	"allnn/internal/geom"
	"allnn/internal/pq"
)

// QueryResult is a point returned by the generic query helpers.
type QueryResult struct {
	Object ObjectID
	Point  geom.Point
	DistSq float64
}

// RangeSearch returns every point of t inside rect (boundaries inclusive)
// by pruning subtrees whose MBR does not intersect rect.
func RangeSearch(t Tree, rect geom.Rect) ([]QueryResult, error) {
	root, err := t.Root()
	if err != nil {
		return nil, err
	}
	if root.Count == 0 {
		return nil, nil
	}
	var out []QueryResult
	var walk func(e *Entry) error
	walk = func(e *Entry) error {
		entries, err := t.Expand(e)
		if err != nil {
			return err
		}
		for i := range entries {
			c := &entries[i]
			if c.IsObject() {
				if rect.Contains(c.Point) {
					out = append(out, QueryResult{Object: c.Object, Point: c.Point})
				}
			} else if rect.Intersects(c.MBR) {
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(&root); err != nil {
		return nil, err
	}
	return out, nil
}

// NearestNeighbors returns the k nearest points of t to q in ascending
// distance order, using the classic best-first traversal.
func NearestNeighbors(t Tree, q geom.Point, k int) ([]QueryResult, error) {
	if k < 1 {
		return nil, nil
	}
	root, err := t.Root()
	if err != nil {
		return nil, err
	}
	if root.Count == 0 {
		return nil, nil
	}
	frontier := pq.NewHeap[Entry](64)
	frontier.Push(geom.MinDistPointRectSq(q, root.MBR), root)
	best := pq.NewKBest[QueryResult](k)
	for frontier.Len() > 0 {
		item, _ := frontier.Pop()
		if item.Key >= best.Worst() {
			break
		}
		entries, err := t.Expand(&item.Value)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsObject() {
				d := geom.DistSq(q, e.Point)
				if d < best.Worst() {
					best.Add(d, QueryResult{Object: e.Object, Point: e.Point, DistSq: d})
				}
			} else {
				d := geom.MinDistPointRectSq(q, e.MBR)
				if d < best.Worst() {
					frontier.Push(d, e)
				}
			}
		}
	}
	items := best.Items()
	out := make([]QueryResult, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out, nil
}
