// Package index defines the common shape of the disk-resident spatial
// indexes (MBRQT and R*-tree) so that the ANN engine in internal/core can
// traverse either one. This is what makes the paper's MBA/RBA pair "the
// same algorithm over two indexes": the traversal only sees Entries.
package index

import (
	"allnn/internal/geom"
	"allnn/internal/storage"
)

// ObjectID identifies a data object (point) in a dataset. IDs are assigned
// by the caller at insertion time and reported back in query results.
type ObjectID uint64

// EntryKind distinguishes the three things an index traversal encounters.
type EntryKind uint8

const (
	// NodeEntry refers to an internal or leaf node of the tree; it can be
	// expanded into child entries.
	NodeEntry EntryKind = iota
	// ObjectEntry is a data point.
	ObjectEntry
)

// Entry is a uniform view of one slot of an index node: either a child
// node reference with its MBR and subtree count, or a data object.
type Entry struct {
	Kind EntryKind
	// MBR bounds everything below this entry. For an ObjectEntry it is
	// the degenerate rectangle of the point.
	MBR geom.Rect
	// Child is the page of the referenced node (NodeEntry only).
	Child storage.PageID
	// Count is the number of data points in the subtree (1 for objects).
	Count uint32
	// Object and Point are set for ObjectEntry.
	Object ObjectID
	Point  geom.Point
}

// IsObject reports whether the entry is a data point.
func (e *Entry) IsObject() bool { return e.Kind == ObjectEntry }

// Tree is the traversal interface shared by MBRQT and the R*-tree.
// The read path — Dim, Len, Root, Expand, Bounds — is safe for
// concurrent use by both implementations (the buffer pool and the
// decoded-node cache are concurrency-safe, and the cache attachment is
// an atomic pointer), which is what lets parallel workers and the
// serving layer multiplex queries over one shared tree. Mutation
// (Insert/Delete) must not run concurrently with anything else.
type Tree interface {
	// Dim returns the dimensionality of the indexed points.
	Dim() int
	// Len returns the number of indexed points.
	Len() int
	// Root returns the entry referring to the root node. For an empty
	// tree the returned entry has Count == 0.
	Root() (Entry, error)
	// Expand reads the node referenced by a NodeEntry and returns its
	// entries: child NodeEntries for an internal node, ObjectEntries for
	// a leaf. It must not be called with an ObjectEntry. The returned
	// slice may be shared (served from a decoded-node cache) and must be
	// treated as immutable by the caller.
	Expand(e *Entry) ([]Entry, error)
	// Bounds returns the MBR of all indexed points (empty rect if none).
	Bounds() geom.Rect
}
