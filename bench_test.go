// Package allnn's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation (Section 4), plus ablations of the
// design choices DESIGN.md calls out. These run at a reduced cardinality
// (BenchScale of the paper's 500K-700K) so that `go test -bench=.`
// completes in minutes; the cmd/annbench harness runs the same
// experiments at arbitrary scale and prints the paper-style tables.
package allnn_test

import (
	"testing"

	"allnn/internal/bench"
	"allnn/internal/bnn"
	"allnn/internal/core"
	"allnn/internal/datagen"
	"allnn/internal/geom"
	"allnn/internal/gorder"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// benchN is the dataset cardinality used by the benchmarks (the paper's
// datasets hold 500K-700K points; benchmarks run a scaled-down slice so
// the full -bench=. sweep stays tractable).
const benchN = 8000

// poolBytes is the paper's buffer pool size.
const poolBytes = 512 * 1024

// buildSelf builds a flushed index over pts and reopens it through a
// fresh pool of the paper's size; the same tree serves as I_R and I_S
// (self-join), as in the TAC/FC experiments.
func buildSelf(b *testing.B, kind bench.IndexKind, pts []geom.Point) (index.Tree, *storage.BufferPool) {
	b.Helper()
	store := storage.NewMemStore()
	buildPool := storage.NewBufferPool(store, 1<<14)
	var meta storage.PageID
	switch kind {
	case bench.KindRStar:
		t, err := rstar.BulkLoad(buildPool, pts, nil, rstar.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Flush(); err != nil {
			b.Fatal(err)
		}
		meta = t.MetaPage()
	default:
		t, err := mbrqt.BulkLoad(buildPool, pts, nil, mbrqt.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Flush(); err != nil {
			b.Fatal(err)
		}
		meta = t.MetaPage()
	}
	pool := storage.NewBufferPool(store, storage.FramesForBytes(poolBytes))
	var tree index.Tree
	var err error
	if kind == bench.KindRStar {
		tree, err = rstar.Open(pool, meta)
	} else {
		tree, err = mbrqt.Open(pool, meta)
	}
	if err != nil {
		b.Fatal(err)
	}
	return tree, pool
}

func runEngine(b *testing.B, tree index.Tree, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(tree, tree, opts, func(core.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func runGorder(b *testing.B, pts []geom.Point, opts gorder.Options) {
	b.Helper()
	ds := gorder.FromPoints(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := storage.NewBufferPool(storage.NewMemStore(), storage.FramesForBytes(poolBytes))
		if _, err := gorder.Join(ds, ds, pool, opts, func(core.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: dataset generation ----------------------------------------------

func BenchmarkTable2DatasetTAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = datagen.TACSurrogate(1, benchN)
	}
}

func BenchmarkTable2DatasetFC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = datagen.FCSurrogate(1, benchN)
	}
}

func BenchmarkTable2DatasetSynthetic6D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = datagen.Synthetic500K(1, benchN, 6)
	}
}

// --- Figure 3(a): ANN on TAC across algorithms and metrics --------------------

func fig3aPoints() []geom.Point { return datagen.TACSurrogate(1, benchN) }

func BenchmarkFig3aMBA_NXNDist(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	runEngine(b, tree, core.Options{Metric: core.NXNDist, ExcludeSelf: true})
}

func BenchmarkFig3aMBA_MaxMaxDist(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	runEngine(b, tree, core.Options{Metric: core.MaxMaxDist, ExcludeSelf: true})
}

func BenchmarkFig3aRBA_NXNDist(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindRStar, fig3aPoints())
	runEngine(b, tree, core.Options{Metric: core.NXNDist, ExcludeSelf: true})
}

func BenchmarkFig3aRBA_MaxMaxDist(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindRStar, fig3aPoints())
	runEngine(b, tree, core.Options{Metric: core.MaxMaxDist, ExcludeSelf: true})
}

func BenchmarkFig3aBNN_NXNDist(b *testing.B)    { benchBNN(b, core.NXNDist) }
func BenchmarkFig3aBNN_MaxMaxDist(b *testing.B) { benchBNN(b, core.MaxMaxDist) }

func benchBNN(b *testing.B, metric core.Metric) {
	pts := fig3aPoints()
	tree, _ := buildSelf(b, bench.KindRStar, pts)
	ds := bnn.FromPoints(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bnn.BNN(ds, tree, bnn.Options{Metric: metric, ExcludeSelf: true},
			func(core.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3aGORDER(b *testing.B) {
	runGorder(b, fig3aPoints(), gorder.Options{ExcludeSelf: true})
}

// --- Figure 3(b): ANN on FC across buffer pool sizes --------------------------

func benchFig3bMBA(b *testing.B, pool int) {
	pts := datagen.FCSurrogate(1, benchN)
	store := storage.NewMemStore()
	buildPool := storage.NewBufferPool(store, 1<<14)
	t, err := mbrqt.BulkLoad(buildPool, pts, nil, mbrqt.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := t.Flush(); err != nil {
		b.Fatal(err)
	}
	qp := storage.NewBufferPool(store, storage.FramesForBytes(pool))
	tree, err := mbrqt.Open(qp, t.MetaPage())
	if err != nil {
		b.Fatal(err)
	}
	runEngine(b, tree, core.Options{ExcludeSelf: true})
}

func BenchmarkFig3bMBA_Pool512KB(b *testing.B) { benchFig3bMBA(b, 512<<10) }
func BenchmarkFig3bMBA_Pool8MB(b *testing.B)   { benchFig3bMBA(b, 8<<20) }

func benchFig3bGORDER(b *testing.B, pool int) {
	pts := datagen.FCSurrogate(1, benchN)
	ds := gorder.FromPoints(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := storage.NewBufferPool(storage.NewMemStore(), storage.FramesForBytes(pool))
		if _, err := gorder.Join(ds, ds, bp, gorder.Options{ExcludeSelf: true},
			func(core.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3bGORDER_Pool512KB(b *testing.B) { benchFig3bGORDER(b, 512<<10) }
func BenchmarkFig3bGORDER_Pool8MB(b *testing.B)   { benchFig3bGORDER(b, 8<<20) }

// --- Figure 4: effect of dimensionality ---------------------------------------

func benchFig4MBA(b *testing.B, dim int) {
	tree, _ := buildSelf(b, bench.KindMBRQT, datagen.Synthetic500K(1, benchN, dim))
	runEngine(b, tree, core.Options{ExcludeSelf: true})
}

func BenchmarkFig4MBA_2D(b *testing.B) { benchFig4MBA(b, 2) }
func BenchmarkFig4MBA_4D(b *testing.B) { benchFig4MBA(b, 4) }
func BenchmarkFig4MBA_6D(b *testing.B) { benchFig4MBA(b, 6) }

func benchFig4GORDER(b *testing.B, dim int) {
	runGorder(b, datagen.Synthetic500K(1, benchN, dim), gorder.Options{ExcludeSelf: true})
}

func BenchmarkFig4GORDER_2D(b *testing.B) { benchFig4GORDER(b, 2) }
func BenchmarkFig4GORDER_4D(b *testing.B) { benchFig4GORDER(b, 4) }
func BenchmarkFig4GORDER_6D(b *testing.B) { benchFig4GORDER(b, 6) }

// --- Figures 5 and 6: AkNN on TAC and FC --------------------------------------

func benchAkNNMBA(b *testing.B, pts []geom.Point, k int) {
	tree, _ := buildSelf(b, bench.KindMBRQT, pts)
	runEngine(b, tree, core.Options{K: k, ExcludeSelf: true})
}

func BenchmarkFig5MBA_TAC_k10(b *testing.B) { benchAkNNMBA(b, datagen.TACSurrogate(1, benchN), 10) }
func BenchmarkFig5MBA_TAC_k50(b *testing.B) { benchAkNNMBA(b, datagen.TACSurrogate(1, benchN), 50) }

func BenchmarkFig5GORDER_TAC_k10(b *testing.B) {
	runGorder(b, datagen.TACSurrogate(1, benchN), gorder.Options{K: 10, ExcludeSelf: true})
}

func BenchmarkFig6MBA_FC_k10(b *testing.B) { benchAkNNMBA(b, datagen.FCSurrogate(1, benchN), 10) }
func BenchmarkFig6MBA_FC_k50(b *testing.B) { benchAkNNMBA(b, datagen.FCSurrogate(1, benchN), 50) }

func BenchmarkFig6GORDER_FC_k10(b *testing.B) {
	runGorder(b, datagen.FCSurrogate(1, benchN), gorder.Options{K: 10, ExcludeSelf: true})
}

// --- Ablations -----------------------------------------------------------------

func BenchmarkAblateTraversalBreadthFirst(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	runEngine(b, tree, core.Options{Traversal: core.BreadthFirst, ExcludeSelf: true})
}

func BenchmarkAblateVolatileBounds(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	runEngine(b, tree, core.Options{VolatileBounds: true, ExcludeSelf: true})
}

func BenchmarkAblatePerObjectGather(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	runEngine(b, tree, core.Options{PerObjectGather: true, ExcludeSelf: true})
}

func BenchmarkAblateKBoundMaxAll_k10(b *testing.B) {
	// The max-of-MAXD bound barely prunes, so this ablation runs on a
	// quarter of the benchmark cardinality to stay tractable.
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints()[:benchN/4])
	runEngine(b, tree, core.Options{K: 10, KBound: core.KBoundMaxAll, ExcludeSelf: true})
}

func BenchmarkAblateKBoundKth_k10(b *testing.B) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints()[:benchN/4])
	runEngine(b, tree, core.Options{K: 10, KBound: core.KBoundKth, ExcludeSelf: true})
}

func BenchmarkAblateMNNBaseline(b *testing.B) {
	pts := fig3aPoints()
	tree, _ := buildSelf(b, bench.KindRStar, pts)
	ds := bnn.FromPoints(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bnn.MNN(ds, tree, bnn.Options{ExcludeSelf: true},
			func(core.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Decoded-node cache ---------------------------------------------------------

// benchExpand measures one node expansion through the public index
// interface, with the decoded-node cache detached (every call decodes
// the page) or warm (every call returns the shared cached slice). The
// warm case must stay allocation-free.
func benchExpand(b *testing.B, kind bench.IndexKind, warm bool) {
	tree, _ := buildSelf(b, kind, fig3aPoints())
	if warm {
		tree.(index.NodeCacher).SetNodeCache(index.NewNodeCache(0))
	} else {
		tree.(index.NodeCacher).SetNodeCache(nil)
	}
	root, err := tree.Root()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tree.Expand(&root); err != nil { // warms the cache when attached
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Expand(&root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandMBRQT_NoCache(b *testing.B)   { benchExpand(b, bench.KindMBRQT, false) }
func BenchmarkExpandMBRQT_WarmCache(b *testing.B) { benchExpand(b, bench.KindMBRQT, true) }
func BenchmarkExpandRStar_NoCache(b *testing.B)   { benchExpand(b, bench.KindRStar, false) }
func BenchmarkExpandRStar_WarmCache(b *testing.B) { benchExpand(b, bench.KindRStar, true) }

// benchCollectCache measures the end-to-end self-ANN join under the
// paper's 512 KB pool with the given node-cache budget; one untimed
// warm-up run first, so the cache-on variant reports the steady state.
func benchCollectCache(b *testing.B, budget int64) {
	tree, _ := buildSelf(b, bench.KindMBRQT, fig3aPoints())
	opts := core.Options{ExcludeSelf: true, NodeCacheBytes: budget}
	if _, _, err := core.Collect(tree, tree, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Collect(tree, tree, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectANN_CacheOff(b *testing.B)  { benchCollectCache(b, core.NodeCacheDisabled) }
func BenchmarkCollectANN_CacheWarm(b *testing.B) { benchCollectCache(b, 0) }

// --- Index micro-benchmarks -----------------------------------------------------

func BenchmarkIndexBuildMBRQT(b *testing.B) {
	pts := fig3aPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := storage.NewBufferPool(storage.NewMemStore(), 1<<14)
		if _, err := mbrqt.BulkLoad(pool, pts, nil, mbrqt.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuildRStarSTR(b *testing.B) {
	pts := fig3aPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := storage.NewBufferPool(storage.NewMemStore(), 1<<14)
		if _, err := rstar.BulkLoad(pool, pts, nil, rstar.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
