module allnn

go 1.22
