// Co-location pattern mining: another application the paper cites (Yoo,
// Shekhar, Celik; ICDM 2005). Given two spatial feature classes — say,
// fast-food outlets and gas stations along a road network — measure how
// strongly the features co-locate: the fraction of each class whose
// nearest instance of the other class lies within a neighborhood radius
// (the participation ratio of the co-location pattern).
//
// Both directions of the measurement are single All-Nearest-Neighbor
// queries between the two feature datasets.
//
// Run with: go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"allnn/ann"
)

const neighborhoodRadius = 0.8 // kilometres

func main() {
	rng := rand.New(rand.NewSource(5))

	// A synthetic 40 km x 40 km city. Gas stations cluster along "roads"
	// (horizontal bands); fast food co-locates with 70% of the stations
	// and also appears independently downtown.
	var gas []ann.Point
	for road := 0; road < 12; road++ {
		y := rng.Float64() * 40
		for i := 0; i < 60; i++ {
			gas = append(gas, ann.Point{rng.Float64() * 40, y + rng.NormFloat64()*0.1})
		}
	}
	var food []ann.Point
	for _, g := range gas {
		if rng.Float64() < 0.7 {
			food = append(food, ann.Point{g[0] + rng.NormFloat64()*0.3, g[1] + rng.NormFloat64()*0.3})
		}
	}
	for i := 0; i < 500; i++ { // independent downtown outlets
		food = append(food, ann.Point{18 + rng.Float64()*4, 18 + rng.Float64()*4})
	}

	ixGas, err := ann.BuildIndex(gas, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ixFood, err := ann.BuildIndex(food, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	participation := func(from, to *ann.Index) (float64, error) {
		results, err := ann.AllNearestNeighbors(from, to, ann.QueryConfig{})
		if err != nil {
			return 0, err
		}
		within := 0
		for _, r := range results {
			if len(r.Neighbors) > 0 && r.Neighbors[0].Dist <= neighborhoodRadius {
				within++
			}
		}
		return float64(within) / float64(len(results)), nil
	}

	prGas, err := participation(ixGas, ixFood)
	if err != nil {
		log.Fatal(err)
	}
	prFood, err := participation(ixFood, ixGas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("co-location of %d gas stations and %d fast-food outlets (radius %.1f km)\n",
		len(gas), len(food), neighborhoodRadius)
	fmt.Printf("  participation(gas -> food): %.2f\n", prGas)
	fmt.Printf("  participation(food -> gas): %.2f\n", prFood)
	pi := prGas
	if prFood < pi {
		pi = prFood
	}
	fmt.Printf("  participation index (min):  %.2f\n", pi)
	switch {
	case pi > 0.5:
		fmt.Println("  => strong co-location pattern")
	case pi > 0.25:
		fmt.Println("  => moderate co-location pattern")
	default:
		fmt.Println("  => weak or no co-location")
	}
}
