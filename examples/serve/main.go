// Serve: run the ANN query service in-process — build an index, mount
// it in a server catalog, and drive point kNN, batched kNN, and a
// streamed AkNN self-join through the typed client, then read the
// server's metrics snapshot.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"

	"allnn/ann"
	"allnn/ann/client"
	"allnn/internal/obs"
	"allnn/internal/server"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	pts := make([]ann.Point, 2000)
	for i := range pts {
		pts[i] = ann.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	ix, err := ann.BuildIndex(pts, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// A server with an obs registry: per-op latency histograms, the
	// in-flight gauge, and the engine's pruning counters all land here.
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Metrics: reg})
	if err := srv.Catalog().Add("pts", ix); err != nil {
		log.Fatal(err)
	}
	defer srv.Catalog().CloseAll()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Point kNN.
	nbs, err := cl.KNN(ctx, "pts", ann.Point{50, 50}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest to (50,50):")
	for _, nb := range nbs {
		fmt.Printf("  point %d at %.4f\n", nb.ID, nb.Dist)
	}

	// Batched kNN: one round trip for many query points.
	batch, err := cl.BatchKNN(ctx, "pts", []ann.Point{{10, 10}, {90, 90}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range batch {
		fmt.Printf("batch query %d -> point %d at %.4f\n",
			res.ID, res.Neighbors[0].ID, res.Neighbors[0].Dist)
	}

	// Streamed AkNN self-join: results arrive in frames as the engine
	// produces them; no full materialisation on either side.
	st, err := cl.SelfJoin(ctx, "pts", 2)
	if err != nil {
		log.Fatal(err)
	}
	joined := 0
	for st.Next() {
		joined++
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-AkNN (k=2) streamed %d results (server counted %d)\n",
		joined, st.Count())

	// Catalog and server state, straight from the service.
	infos, err := cl.List(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("catalog: %s (%s, %d points, dim %d)\n",
			info.Name, info.Kind, info.Points, info.Dim)
	}
	snap := reg.Snapshot()
	fmt.Printf("metrics: %d served requests, %d engine results\n",
		snap.Counters["server.requests"], snap.Counters["engine.results"])
}
