// Star catalog cross-matching: the astronomy workload behind the paper's
// TAC experiments. Two catalogs observe overlapping sky regions with
// slightly different astrometry; for every star of the first catalog we
// find its nearest counterpart in the second and accept the match when
// the separation is within an astrometric tolerance.
//
// This is exactly an All-Nearest-Neighbor query between two point sets in
// (right ascension, declination) space.
//
// Run with: go run ./examples/starcatalog
package main

import (
	"fmt"
	"log"
	"math/rand"

	"allnn/ann"
)

const (
	catalogSize = 20000
	// Positional scatter between the two observations, in degrees.
	astrometricJitter = 0.0004
	// Matches farther than this are considered different stars.
	matchTolerance = 0.002
	// Fraction of catalog B stars that are spurious detections.
	spuriousFraction = 0.08
)

func main() {
	rng := rand.New(rand.NewSource(1999))

	// Catalog A: clustered star fields on a band of sky (10x10 degrees).
	catalogA := make([]ann.Point, 0, catalogSize)
	for len(catalogA) < catalogSize {
		// Star fields of ~200 stars around random field centers.
		cx, cy := rng.Float64()*10, rng.Float64()*10
		for i := 0; i < 200 && len(catalogA) < catalogSize; i++ {
			catalogA = append(catalogA, ann.Point{
				cx + rng.NormFloat64()*0.2,
				cy + rng.NormFloat64()*0.2,
			})
		}
	}

	// Catalog B: the same stars re-observed with jitter, a few dropped,
	// plus spurious detections.
	catalogB := make([]ann.Point, 0, catalogSize)
	trueMatch := make(map[int]int) // catalog A index -> catalog B index
	for i, star := range catalogA {
		if rng.Float64() < 0.05 {
			continue // not detected in the second epoch
		}
		trueMatch[i] = len(catalogB)
		catalogB = append(catalogB, ann.Point{
			star[0] + rng.NormFloat64()*astrometricJitter,
			star[1] + rng.NormFloat64()*astrometricJitter,
		})
	}
	spurious := int(float64(len(catalogB)) * spuriousFraction)
	for i := 0; i < spurious; i++ {
		catalogB = append(catalogB, ann.Point{rng.Float64() * 10, rng.Float64() * 10})
	}

	ixA, err := ann.BuildIndex(catalogA, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ixB, err := ann.BuildIndex(catalogB, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	matches, err := ann.AllNearestNeighbors(ixA, ixB, ann.QueryConfig{})
	if err != nil {
		log.Fatal(err)
	}

	accepted, correct, rejected := 0, 0, 0
	for _, m := range matches {
		nn := m.Neighbors[0]
		if nn.Dist <= matchTolerance {
			accepted++
			if want, ok := trueMatch[int(m.ID)]; ok && want == int(nn.ID) {
				correct++
			}
		} else {
			rejected++
		}
	}

	fmt.Printf("cross-matched %d stars against %d detections\n", len(catalogA), len(catalogB))
	fmt.Printf("  accepted matches (sep <= %.4f deg): %d\n", matchTolerance, accepted)
	fmt.Printf("  of which correct counterparts:      %d (%.1f%%)\n",
		correct, 100*float64(correct)/float64(accepted))
	fmt.Printf("  rejected (no counterpart in range): %d\n", rejected)
	fmt.Printf("  stars truly present in both epochs: %d\n", len(trueMatch))
}
