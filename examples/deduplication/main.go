// Deduplication: find near-duplicate records with the distance-join
// operations. A sensor network reports positions with noise; readings
// within a tolerance radius of each other are the same physical object
// observed twice. WithinDistance finds all such pairs in one pass, and
// ClosestPairs surfaces the most suspicious (closest) ones for review.
//
// Run with: go run ./examples/deduplication
package main

import (
	"fmt"
	"log"
	"math/rand"

	"allnn/ann"
)

const (
	trueObjects = 3000
	dupFraction = 0.15  // share of objects reported twice
	noise       = 0.002 // sensor noise (km)
	tolerance   = 0.01  // readings closer than this are duplicates (km)
)

func main() {
	rng := rand.New(rand.NewSource(23))

	// True object positions in a 10 km x 10 km area, plus duplicated
	// reports with sensor noise.
	var readings []ann.Point
	duplicateOf := map[int]int{} // reading index -> index of its twin
	for i := 0; i < trueObjects; i++ {
		p := ann.Point{rng.Float64() * 10, rng.Float64() * 10}
		readings = append(readings, p)
		if rng.Float64() < dupFraction {
			dup := ann.Point{p[0] + rng.NormFloat64()*noise, p[1] + rng.NormFloat64()*noise}
			duplicateOf[len(readings)] = len(readings) - 1
			readings = append(readings, dup)
		}
	}

	ix, err := ann.BuildIndex(readings, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// All pairs within the tolerance radius: each duplicate pair appears
	// twice (once per direction), so deduplicate on r < s.
	pairs := map[[2]uint64]float64{}
	err = ann.WithinDistance(ix, ix, tolerance, true, func(r, s uint64, dist float64) error {
		if r < s {
			pairs[[2]uint64{r, s}] = dist
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	for p := range pairs {
		if twin, ok := duplicateOf[int(p[1])]; ok && twin == int(p[0]) {
			correct++
		}
	}
	fmt.Printf("scanned %d readings (%d true objects, %d duplicated reports)\n",
		len(readings), trueObjects, len(duplicateOf))
	fmt.Printf("  candidate duplicate pairs within %.0f m: %d\n", tolerance*1000, len(pairs))
	fmt.Printf("  of which true sensor duplicates:         %d (%.1f%% precision)\n",
		correct, 100*float64(correct)/float64(len(pairs)))

	// The closest pairs are the highest-confidence duplicates.
	top, err := ann.ClosestPairs(ix, ix, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  highest-confidence duplicates (closest pairs):")
	seen := map[[2]uint64]bool{}
	for _, p := range top {
		a, b := p.R, p.S
		if a > b {
			a, b = b, a
		}
		if seen[[2]uint64{a, b}] {
			continue
		}
		seen[[2]uint64{a, b}] = true
		fmt.Printf("    readings %5d and %5d: %.2f m apart\n", a, b, p.Dist*1000)
	}
}
