// Clustering: use an AkNN self-join as the neighborhood step of
// friends-of-friends / single-linkage clustering — the workload that
// motivates ANN in the paper's introduction (HOP group finding in
// astrophysics, single-linkage hierarchical clustering).
//
// Points closer than a linking length are "friends"; clusters are the
// connected components of the friendship graph. One AkNN pass provides
// the candidate edges; union-find stitches the components.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"allnn/ann"
)

const (
	pointsPerBlob     = 150
	blobs             = 5
	noisePoints       = 60
	linkingLength     = 0.05
	neighborsPerPoint = 8
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Synthetic workload: a few tight Gaussian blobs plus uniform noise.
	var pts []ann.Point
	for b := 0; b < blobs; b++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < pointsPerBlob; i++ {
			pts = append(pts, ann.Point{cx + rng.NormFloat64()*0.01, cy + rng.NormFloat64()*0.01})
		}
	}
	for i := 0; i < noisePoints; i++ {
		pts = append(pts, ann.Point{rng.Float64(), rng.Float64()})
	}

	ix, err := ann.BuildIndex(pts, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// One AkNN self-join provides each point's nearest neighbors; edges
	// shorter than the linking length connect components.
	results, err := ann.SelfAllKNearestNeighbors(ix, neighborsPerPoint, ann.QueryConfig{})
	if err != nil {
		log.Fatal(err)
	}

	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	edges := 0
	for _, res := range results {
		for _, nn := range res.Neighbors {
			if nn.Dist <= linkingLength {
				union(int(res.ID), int(nn.ID))
				edges++
			}
		}
	}

	sizes := map[int]int{}
	for i := range pts {
		sizes[find(i)]++
	}
	var clusterSizes []int
	singletons := 0
	for _, sz := range sizes {
		if sz == 1 {
			singletons++
		} else {
			clusterSizes = append(clusterSizes, sz)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(clusterSizes)))

	fmt.Printf("friends-of-friends clustering of %d points (linking length %.3f)\n",
		len(pts), linkingLength)
	fmt.Printf("  friendship edges from AkNN (k=%d): %d\n", neighborsPerPoint, edges)
	fmt.Printf("  clusters found: %d (expected ~%d blobs)\n", len(clusterSizes), blobs)
	for i, sz := range clusterSizes {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(clusterSizes)-8)
			break
		}
		fmt.Printf("  cluster %d: %d points\n", i+1, sz)
	}
	fmt.Printf("  noise singletons: %d\n", singletons)
}
