// Quickstart: build two small indexes and run an All-Nearest-Neighbor
// query between them, then an All-3-Nearest-Neighbor self-join.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"allnn/ann"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Two datasets in the unit square: 12 "query" points and 40 "target"
	// points.
	queries := make([]ann.Point, 12)
	for i := range queries {
		queries[i] = ann.Point{rng.Float64(), rng.Float64()}
	}
	targets := make([]ann.Point, 40)
	for i := range targets {
		targets[i] = ann.Point{rng.Float64(), rng.Float64()}
	}

	// Index both sides. The defaults give an MBRQT index and NXNDIST
	// pruning — the configuration the paper recommends.
	r, err := ann.BuildIndex(queries, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := ann.BuildIndex(targets, ann.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// All-Nearest-Neighbors: one result per query point.
	results, err := ann.AllNearestNeighbors(r, s, ann.QueryConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("All nearest neighbors (query -> target):")
	for _, res := range results {
		nn := res.Neighbors[0]
		fmt.Printf("  query %2d (%.2f, %.2f) -> target %2d (%.2f, %.2f)  dist %.3f\n",
			res.ID, res.Point[0], res.Point[1], nn.ID, nn.Point[0], nn.Point[1], nn.Dist)
	}

	// AkNN self-join: for every target point, its 3 nearest other targets.
	fmt.Println("\n3 nearest neighbors of the first few target points (self-join):")
	selfResults, err := ann.SelfAllKNearestNeighbors(s, 3, ann.QueryConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range selfResults[:5] {
		fmt.Printf("  target %2d:", res.ID)
		for _, nn := range res.Neighbors {
			fmt.Printf("  %2d@%.3f", nn.ID, nn.Dist)
		}
		fmt.Println()
	}
}
