GO ?= go

.PHONY: build test race vet check bench-smoke trace-smoke fuzz-corpus bench-parallel bench-parallel-smoke bench-nodecache bench-approx bench-approx-smoke bench-shard chaos chaos-recover fuzz-smoke race-sched serve-smoke obs-serve-smoke router-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet plus the full suite under the race detector,
# plus a one-iteration pass over every benchmark so they cannot rot.
check: vet race bench-smoke trace-smoke

# chaos runs the fault-injection suite under the race detector: thousands
# of queries over a store that fails 1% of reads, corruption surfacing,
# and mid-query cancellation — asserting classified errors and zero
# leaked pins throughout.
chaos:
	$(GO) test -race -run 'Chaos|Cancel' -count=1 ./internal/... ./ann/

# chaos-recover runs the durability suite under the race detector:
# kill-9-style crash loops sweeping the failure point across every WAL
# write, fsync, and checkpoint page write (recovered state must be
# byte-identical to a never-crashed reference), plus concurrent insert
# batches against parallel snapshot-isolated queries on GOMAXPROCS=4.
chaos-recover:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		-run 'ChaosCrashRecovery|RecoveryAfterCrash|WriteFailedClassification|ConcurrentWritesAndQueries|SnapshotIsolation' \
		./ann/ ./internal/mbrqt ./internal/rstar

# fuzz-corpus regenerates the wire seed corpora from the sample frame
# lists (corpus_test.go) after a protocol change; curated legacy-*
# seeds are preserved.
fuzz-corpus:
	$(GO) test ./internal/wire -run TestRefreshFuzzCorpus -write-corpus

# fuzz-smoke gives each decode fuzzer a short budget on top of the
# checked-in corpora (which every plain `go test` already replays).
# `go test -fuzz` accepts one matching target per invocation, hence the
# three lines.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDecodeRecord -fuzztime=5s ./internal/mbrqt
	$(GO) test -run=NONE -fuzz=FuzzRecordFromPage -fuzztime=5s ./internal/mbrqt
	$(GO) test -run=NONE -fuzz=FuzzDecodeNode -fuzztime=5s ./internal/rstar
	$(GO) test -run=NONE -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDecodeResponse -fuzztime=5s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDecodeWALRecord -fuzztime=5s ./internal/storage

# serve-smoke boots the real annserve daemon on a temp index, drives a
# batched kNN and a streamed self-join through the client, and asserts
# byte parity with direct library calls plus a clean SIGTERM drain.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/annserve

# router-smoke boots the real annrouter daemon over two in-process
# annserve shards (shard-map file, flags, signal handling), asserts
# routed kNN and self-join byte parity against direct library calls on
# the curve-ordered dataset, and delivers a SIGTERM for a clean drain.
router-smoke:
	$(GO) test -run TestRouterSmoke -count=1 -v ./cmd/annrouter

# bench-shard measures distributed routing: four Hilbert-sharded
# in-process backends behind the scatter-gather router vs one node
# serving the same (curve-ordered) dataset, with byte-parity checks and
# shard-prune counters. Fails if parity breaks or the NXNDIST/MINDIST
# bounds never prune a shard.
bench-shard:
	$(GO) run ./cmd/annbench -exp shard -scale 0.05 -json BENCH_shard.json

# obs-serve-smoke boots the daemon with the full observability surface
# (slow-query ring, access log, debug endpoints, Prometheus exposition)
# and runs a traced WantReport join end to end, asserting the report,
# the debug JSON, and the exposition before a clean SIGTERM drain.
obs-serve-smoke:
	$(GO) test -run TestObsServeSmoke -count=1 -v ./cmd/annserve

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# trace-smoke validates the observability artifacts end to end: it runs
# the traced "mba" experiment and checks the emitted Chrome trace JSON
# (span coverage and nesting) and QueryReport against the registry.
trace-smoke:
	$(GO) test -run TestTraceSmoke -v ./internal/bench

bench-parallel:
	$(GO) run ./cmd/annbench -exp parallel -scale 0.2 -json BENCH_parallel.json

# bench-parallel-smoke is the CI scaling gate: a small run pinned to
# GOMAXPROCS=4 that fails unless 4 workers beat serial by 1.5x. The gate
# auto-skips (with a loud warning) when min(NumCPU, GOMAXPROCS) < 4, so it
# is safe on starved runners while still catching scaling regressions on
# real ones.
bench-parallel-smoke:
	GOMAXPROCS=4 $(GO) run ./cmd/annbench -exp parallel -scale 0.05 -parallelism 4 -min-speedup4 1.5

# race-sched runs the scheduler and batch-kernel suites under the race
# detector — the fast, targeted version of `make race` for iterating on
# internal/core/parallel.go and mba.go.
race-sched:
	$(GO) vet ./internal/core ./internal/geom
	$(GO) test -race -run 'Scheduler|EmitTree|Parallel|BatchLeafJoin|DistSqBlock' -count=1 ./internal/core ./internal/geom

bench-nodecache:
	$(GO) run ./cmd/annbench -exp nodecache -json BENCH_nodecache.json

# bench-approx collects the approximate-mode sweep (ε ladder, recall
# targets, the oracle-seeded ceiling row) at the paper scale, scoring
# every run against the brute-force oracle.
bench-approx:
	$(GO) run ./cmd/annbench -exp approx -scale 0.05 -json BENCH_approx.json -min-recall 0.99

# bench-approx-smoke is the CI recall gate: a small approximate sweep
# that fails unless the ε=0 control is byte-identical to exact, every
# pure-ε run honors its (1+ε) distance contract, and at least one
# approximate setting reaches measured recall >= 0.99.
bench-approx-smoke:
	$(GO) run ./cmd/annbench -exp approx -scale 0.01 -min-recall 0.99 -quiet
