GO ?= go

.PHONY: build test race vet check bench-smoke bench-parallel bench-nodecache

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet plus the full suite under the race detector,
# plus a one-iteration pass over every benchmark so they cannot rot.
check: vet race bench-smoke

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

bench-parallel:
	$(GO) run ./cmd/annbench -exp parallel -scale 0.2 -json BENCH_parallel.json

bench-nodecache:
	$(GO) run ./cmd/annbench -exp nodecache -json BENCH_nodecache.json
