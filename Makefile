GO ?= go

.PHONY: build test race vet check bench-smoke trace-smoke bench-parallel bench-nodecache

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet plus the full suite under the race detector,
# plus a one-iteration pass over every benchmark so they cannot rot.
check: vet race bench-smoke trace-smoke

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# trace-smoke validates the observability artifacts end to end: it runs
# the traced "mba" experiment and checks the emitted Chrome trace JSON
# (span coverage and nesting) and QueryReport against the registry.
trace-smoke:
	$(GO) test -run TestTraceSmoke -v ./internal/bench

bench-parallel:
	$(GO) run ./cmd/annbench -exp parallel -scale 0.2 -json BENCH_parallel.json

bench-nodecache:
	$(GO) run ./cmd/annbench -exp nodecache -json BENCH_nodecache.json
