GO ?= go

.PHONY: build test race vet check bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is what CI runs: vet plus the full suite under the race detector.
check: vet race

bench-parallel:
	$(GO) run ./cmd/annbench -exp parallel -scale 0.2 -json BENCH_parallel.json
