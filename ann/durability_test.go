package ann

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"allnn/internal/storage"
)

// basePoints returns a dataset whose bounding box is pinned to
// [0,100]^dim (two corner sentinels), so the MBRQT root cell fixed at
// build time covers every point randomPoints can later generate.
func basePoints(seed int64, n, dim int) []Point {
	pts := randomPoints(seed, n, dim)
	lo, hi := make(Point, dim), make(Point, dim)
	for d := range hi {
		hi[d] = 100
	}
	pts[0], pts[1] = lo, hi
	return pts
}

// mutation is one step of a write scenario: an insert or delete batch,
// or a checkpoint (Flush) when ids is nil.
type mutation struct {
	insert bool
	ids    []uint64
	pts    []Point
}

func (m mutation) isFlush() bool { return m.ids == nil }

// scenario builds the deterministic step sequence the recovery tests
// replay: inserts, deletes of base and inserted points, and interleaved
// checkpoints.
func scenario(base []Point) []mutation {
	batch := func(firstID uint64, seed int64, n int) mutation {
		m := mutation{insert: true, pts: randomPoints(seed, n, len(base[0]))}
		for i := 0; i < n; i++ {
			m.ids = append(m.ids, firstID+uint64(i))
		}
		return m
	}
	insA := batch(1000, 101, 20)
	insB := batch(1100, 102, 20)
	insC := batch(1200, 103, 20)
	delBase := mutation{insert: false}
	for i := 5; i < 25; i++ {
		delBase.ids = append(delBase.ids, uint64(i))
		delBase.pts = append(delBase.pts, base[i])
	}
	delA := mutation{insert: false, ids: insA.ids[:10], pts: insA.pts[:10]}
	return []mutation{
		insA,
		delBase,
		{}, // flush
		insB,
		{}, // flush
		delA,
		insC,
	}
}

// applyStep runs one scenario step against a live index.
func applyStep(ix *Index, m mutation) error {
	switch {
	case m.isFlush():
		return ix.Flush()
	case m.insert:
		return ix.InsertBatch(m.ids, m.pts)
	default:
		_, err := ix.DeleteBatch(m.ids, m.pts)
		return err
	}
}

// stepLen returns the signed size change of a fully applied step.
func stepLen(m mutation) int {
	if m.isFlush() {
		return 0
	}
	if m.insert {
		return len(m.ids)
	}
	return -len(m.ids)
}

// buildReference replays base + the acked steps (and, when the crash
// interrupted a batch, its first `prefix` committed ops) onto a fresh
// in-memory index. Tree shape is a deterministic function of the op
// sequence, so the reference is byte-identical to a recovered index.
func buildReference(t *testing.T, kind IndexKind, base []Point, steps []mutation, failed, prefix int) *Index {
	t.Helper()
	ref, err := BuildIndex(base, IndexConfig{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range steps[:failed] {
		if m.isFlush() {
			continue
		}
		if err := applyStep(ref, m); err != nil {
			t.Fatalf("reference step: %v", err)
		}
	}
	if failed < len(steps) && prefix > 0 {
		m := steps[failed]
		p := mutation{insert: m.insert, ids: m.ids[:prefix], pts: m.pts[:prefix]}
		if err := applyStep(ref, p); err != nil {
			t.Fatalf("reference prefix: %v", err)
		}
	}
	return ref
}

// requireSameJoin asserts two indexes answer a k=2 self-join with
// identical ids and bit-identical distances.
func requireSameJoin(t *testing.T, label string, got, want *Index) {
	t.Helper()
	join := func(ix *Index) []Result {
		res, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: self-join: %v", label, err)
		}
		sort.Slice(res, func(a, b int) bool { return res[a].ID < res[b].ID })
		return res
	}
	g, w := join(got), join(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d results, want %d", label, len(g), len(w))
	}
	for i := range w {
		if g[i].ID != w[i].ID {
			t.Fatalf("%s: result %d has ID %d, want %d", label, i, g[i].ID, w[i].ID)
		}
		if len(g[i].Neighbors) != len(w[i].Neighbors) {
			t.Fatalf("%s: object %d has %d neighbors, want %d", label, w[i].ID, len(g[i].Neighbors), len(w[i].Neighbors))
		}
		for n := range w[i].Neighbors {
			if g[i].Neighbors[n].ID != w[i].Neighbors[n].ID || g[i].Neighbors[n].Dist != w[i].Neighbors[n].Dist {
				t.Fatalf("%s: object %d neighbor %d = (%d, %v), want (%d, %v)",
					label, w[i].ID, n, g[i].Neighbors[n].ID, g[i].Neighbors[n].Dist,
					w[i].Neighbors[n].ID, w[i].Neighbors[n].Dist)
			}
		}
	}
}

// checkIntegrity runs the backing tree's structural verification.
func checkIntegrity(t *testing.T, label string, ix *Index) {
	t.Helper()
	c, ok := ix.tree.(interface{ CheckIntegrity() error })
	if !ok {
		t.Fatalf("%s: tree has no CheckIntegrity", label)
	}
	if err := c.CheckIntegrity(); err != nil {
		t.Fatalf("%s: integrity: %v", label, err)
	}
}

// TestLiveInsertDelete exercises the mutation API end to end on both
// tree kinds and both stores, verifying results against brute force.
func TestLiveInsertDelete(t *testing.T) {
	base := basePoints(71, 120, 2)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		for _, file := range []bool{false, true} {
			label := fmt.Sprintf("%v/file=%v", kind, file)
			cfg := IndexConfig{Kind: kind}
			if file {
				cfg.PageFile = filepath.Join(t.TempDir(), "live.pages")
			}
			ix, err := BuildIndex(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			live := append([]Point{}, base...)
			liveIDs := make([]uint64, len(base))
			for i := range liveIDs {
				liveIDs[i] = uint64(i)
			}

			add := randomPoints(72, 30, 2)
			addIDs := make([]uint64, len(add))
			for i := range addIDs {
				addIDs[i] = 500 + uint64(i)
			}
			if err := ix.InsertBatch(addIDs, add); err != nil {
				t.Fatalf("%s: insert: %v", label, err)
			}
			live = append(live, add...)
			liveIDs = append(liveIDs, addIDs...)

			found, err := ix.DeleteBatch(liveIDs[10:30], live[10:30])
			if err != nil {
				t.Fatalf("%s: delete: %v", label, err)
			}
			if found != 20 {
				t.Fatalf("%s: delete found %d, want 20", label, found)
			}
			// Deleting the same points again is a durable no-op.
			if found, err = ix.DeleteBatch(liveIDs[10:30], live[10:30]); err != nil || found != 0 {
				t.Fatalf("%s: re-delete found %d, err %v", label, found, err)
			}
			live = append(live[:10:10], live[30:]...)
			liveIDs = append(liveIDs[:10:10], liveIDs[30:]...)

			if ix.Len() != len(live) {
				t.Fatalf("%s: Len %d, want %d", label, ix.Len(), len(live))
			}
			checkIntegrity(t, label, ix)

			// Every live point's nearest neighbor matches brute force.
			for probe := 0; probe < len(live); probe += 13 {
				nb, err := ix.NearestNeighbors(live[probe], 1)
				if err != nil {
					t.Fatalf("%s: NN: %v", label, err)
				}
				bestID, bestD := uint64(0), -1.0
				for j, q := range live {
					d := 0.0
					for dd := range q {
						d += (q[dd] - live[probe][dd]) * (q[dd] - live[probe][dd])
					}
					if bestD < 0 || d < bestD {
						bestD, bestID = d, liveIDs[j]
					}
				}
				if len(nb) != 1 || nb[0].ID != bestID {
					t.Fatalf("%s: NN(%d) = %v, want id %d", label, probe, nb, bestID)
				}
			}

			// Inserting outside the MBRQT's fixed root cell is rejected
			// before anything is logged.
			if kind == MBRQT {
				err := ix.Insert(9999, Point{500, 500})
				if !errors.Is(err, ErrInvalidConfig) {
					t.Fatalf("%s: out-of-space insert: %v", label, err)
				}
			}
			if err := ix.Insert(9998, Point{1, 2, 3}); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("%s: wrong-dim insert: %v", label, err)
			}

			ix.RequireNoPinnedFrames(t)
			if err := ix.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
		}
	}
}

// TestSnapshotIsolation pins a pre-write snapshot mid-query and checks
// the query completes against it even though a batch commits while the
// result stream is paused.
func TestSnapshotIsolation(t *testing.T) {
	base := basePoints(73, 200, 2)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		ix, err := BuildIndex(base, IndexConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		inserted := false
		count := 0
		err = StreamSelfAllKNearestNeighborsContext(t.Context(), ix, 1, QueryConfig{Parallelism: 1}, func(Result) error {
			count++
			if !inserted {
				// The query has pinned its snapshot; commit a batch now.
				inserted = true
				return ix.InsertBatch([]uint64{5000}, []Point{{50, 50}})
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: stream: %v", kind, err)
		}
		if count != len(base) {
			t.Fatalf("%v: snapshot query saw %d results, want %d", kind, count, len(base))
		}
		if ix.Len() != len(base)+1 {
			t.Fatalf("%v: post-write Len %d", kind, ix.Len())
		}
		ix.RequireNoPinnedFrames(t)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryAfterCrash kills an index (no Flush, no Close) after a
// sequence of committed batches and checks that OpenIndex rebuilds the
// exact acknowledged state from the WAL.
func TestRecoveryAfterCrash(t *testing.T) {
	for _, kind := range []IndexKind{MBRQT, RStar} {
		base := basePoints(74, 250, 2)
		steps := scenario(base)
		path := filepath.Join(t.TempDir(), "crash.pages")
		ix, err := BuildIndex(base, IndexConfig{Kind: kind, PageFile: path})
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range steps {
			if err := applyStep(ix, m); err != nil {
				t.Fatalf("%v: step %d: %v", kind, i, err)
			}
		}
		// Crash: abandon without Flush or Close.
		ix = nil

		rec, err := OpenIndex(path, IndexConfig{})
		if err != nil {
			t.Fatalf("%v: recover: %v", kind, err)
		}
		if got := rec.Stats(); got.WALReplayed == 0 {
			t.Fatalf("%v: recovery replayed no records", kind)
		}
		ref := buildReference(t, kind, base, steps, len(steps), 0)
		requireSameJoin(t, fmt.Sprintf("%v recovered", kind), rec, ref)
		checkIntegrity(t, fmt.Sprintf("%v recovered", kind), rec)
		rec.RequireNoPinnedFrames(t)

		// Clean close checkpoints; the next open has nothing to replay.
		if err := rec.Close(); err != nil {
			t.Fatalf("%v: close: %v", kind, err)
		}
		again, err := OpenIndex(path, IndexConfig{})
		if err != nil {
			t.Fatalf("%v: reopen: %v", kind, err)
		}
		if got := again.Stats(); got.WALReplayed != 0 {
			t.Fatalf("%v: clean reopen replayed %d records", kind, got.WALReplayed)
		}
		requireSameJoin(t, fmt.Sprintf("%v clean reopen", kind), again, ref)
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// chaosRun executes the scenario against a fault-injected file index,
// crashes at the first failure, recovers with injection disabled, and
// verifies the recovered index is byte-identical to a never-crashed
// reference holding the acknowledged ops (plus any committed prefix of
// the failed batch). Returns false when the build itself failed (the
// fault fired before there was anything to recover).
func chaosRun(t *testing.T, kind IndexKind, label string, wrapStoreF func(storage.Store) storage.Store, wrapWALF func(storage.WALBackend) storage.WALBackend) bool {
	t.Helper()
	base := basePoints(75, 250, 2)
	steps := scenario(base)
	path := filepath.Join(t.TempDir(), "chaos.pages")

	testWrapStore, testWrapWAL = wrapStoreF, wrapWALF
	ix, buildErr := BuildIndex(base, IndexConfig{Kind: kind, PageFile: path})
	failedStep := -1
	if buildErr == nil {
		for i, m := range steps {
			if err := applyStep(ix, m); err != nil {
				failedStep = i
				break
			}
		}
		if failedStep >= 0 {
			// The writer is broken but queries must still serve the last
			// published snapshot, and release it cleanly.
			if _, err := SelfAllNearestNeighbors(ix, QueryConfig{}); err != nil {
				t.Fatalf("%s: query after write failure: %v", label, err)
			}
			ix.RequireNoPinnedFrames(t)
		}
	}
	testWrapStore, testWrapWAL = nil, nil
	if buildErr != nil {
		return false
	}
	// Crash: abandon ix without Close.
	ix = nil
	if failedStep == -1 {
		failedStep = len(steps)
	}

	rec, err := OpenIndex(path, IndexConfig{})
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	ackedLen := len(base)
	for _, m := range steps[:failedStep] {
		ackedLen += stepLen(m)
	}
	// The failed batch is indeterminate: recovery may surface any
	// committed prefix of it (a flush step changes nothing).
	prefix := 0
	if failedStep < len(steps) && !steps[failedStep].isFlush() {
		if steps[failedStep].insert {
			prefix = rec.Len() - ackedLen
		} else {
			prefix = ackedLen - rec.Len()
		}
		if prefix < 0 || prefix > len(steps[failedStep].ids) {
			t.Fatalf("%s: recovered Len %d outside [acked %d, acked+batch]", label, rec.Len(), ackedLen)
		}
	} else if rec.Len() != ackedLen {
		t.Fatalf("%s: recovered Len %d, want %d", label, rec.Len(), ackedLen)
	}

	ref := buildReference(t, kind, base, steps, failedStep, prefix)
	requireSameJoin(t, label, rec, ref)
	checkIntegrity(t, label, rec)
	rec.RequireNoPinnedFrames(t)
	if err := rec.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	return true
}

// TestChaosCrashRecoveryWALFaults sweeps the crash point across every
// WAL write of the scenario, covering torn group commits (partial batch
// on disk), clean write failures, and failed fsyncs.
func TestChaosCrashRecoveryWALFaults(t *testing.T) {
	for _, kind := range []IndexKind{MBRQT, RStar} {
		for n := 1; n <= 14; n++ {
			// Torn write: the n-th WAL write persists only a prefix.
			keep := (n * 37) % 90
			label := fmt.Sprintf("%v/torn-write-%d/keep-%d", kind, n, keep)
			chaosRun(t, kind, label, nil, func(b storage.WALBackend) storage.WALBackend {
				return storage.NewFaultWALFile(b, storage.WALFaultConfig{TornWriteAfter: n, TornKeepBytes: keep})
			})
			// Failed fsync: the write may be fully on disk, but the batch
			// was never acknowledged.
			label = fmt.Sprintf("%v/fail-sync-%d", kind, n)
			chaosRun(t, kind, label, nil, func(b storage.WALBackend) storage.WALBackend {
				return storage.NewFaultWALFile(b, storage.WALFaultConfig{FailSyncsAfter: n})
			})
		}
	}
}

// TestChaosCrashRecoveryStoreFaults sweeps the crash point across the
// page-store writes and fsyncs of the scenario's checkpoints — the
// mid-Flush crash windows (data pages partially written, header page
// written before/after its WAL copy).
func TestChaosCrashRecoveryStoreFaults(t *testing.T) {
	for _, kind := range []IndexKind{MBRQT, RStar} {
		ran := 0
		for n := 1; n <= 40; n += 3 {
			label := fmt.Sprintf("%v/fail-page-write-%d", kind, n)
			if chaosRun(t, kind, label, func(s storage.Store) storage.Store {
				return storage.NewFaultStore(s, storage.FaultConfig{FailWritesAfter: n})
			}, nil) {
				ran++
			}
		}
		for n := 1; n <= 8; n++ {
			label := fmt.Sprintf("%v/fail-store-sync-%d", kind, n)
			if chaosRun(t, kind, label, func(s storage.Store) storage.Store {
				return storage.NewFaultStore(s, storage.FaultConfig{FailSyncsAfter: n})
			}, nil) {
				ran++
			}
		}
		if ran == 0 {
			t.Fatalf("%v: every store-fault run died during build; no recovery exercised", kind)
		}
	}
}

// TestWriteFailedClassification checks the durability-failure contract:
// the error wraps ErrWriteFailed, later writes fail fast, and queries
// keep serving the last published snapshot.
func TestWriteFailedClassification(t *testing.T) {
	base := basePoints(76, 150, 2)
	path := filepath.Join(t.TempDir(), "wf.pages")
	// Sync 1 writes the WAL header, sync 2 is the build checkpoint's
	// meta append, sync 3 its WAL reset; sync 4 is the first batch's
	// group commit.
	testWrapWAL = func(b storage.WALBackend) storage.WALBackend {
		return storage.NewFaultWALFile(b, storage.WALFaultConfig{FailSyncsAfter: 4})
	}
	ix, err := BuildIndex(base, IndexConfig{PageFile: path})
	testWrapWAL = nil
	if err != nil {
		t.Fatal(err)
	}
	err = ix.InsertBatch([]uint64{2000, 2001}, []Point{{1, 1}, {2, 2}})
	if !errors.Is(err, ErrWriteFailed) || !errors.Is(err, storage.ErrWriteFailed) {
		t.Fatalf("insert after fsync fault: %v, want ErrWriteFailed", err)
	}
	if err := ix.Insert(2002, Point{3, 3}); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("second insert: %v, want fast ErrWriteFailed", err)
	}
	if ix.Len() != len(base) {
		t.Fatalf("failed batch changed Len to %d", ix.Len())
	}
	if _, err := SelfAllNearestNeighbors(ix, QueryConfig{}); err != nil {
		t.Fatalf("query after write failure: %v", err)
	}
	ix.RequireNoPinnedFrames(t)
	// The failed batch is indeterminate: its write may have reached the
	// file even though the fsync was never acknowledged.
	rec, err := OpenIndex(path, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if n := rec.Len(); n != len(base) && n != len(base)+2 {
		t.Fatalf("recovered Len %d, want %d or %d", n, len(base), len(base)+2)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWritesAndQueries runs a writer committing insert
// batches against parallel query goroutines on GOMAXPROCS=4. Every
// query must observe a published batch boundary — never a partial
// batch — and the final state must hold everything. Run with -race.
func TestConcurrentWritesAndQueries(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		batches   = 25
		batchSize = 8
	)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		base := basePoints(77, 200, 2)
		path := filepath.Join(t.TempDir(), "conc.pages")
		ix, err := BuildIndex(base, IndexConfig{Kind: kind, PageFile: path})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		writerDone := make(chan struct{})
		errCh := make(chan error, 16)
		report := func(err error) {
			select {
			case errCh <- err:
			default:
			}
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(writerDone)
			pts := randomPoints(78, batches*batchSize, 2)
			for b := 0; b < batches; b++ {
				ids := make([]uint64, batchSize)
				for i := range ids {
					ids[i] = 3000 + uint64(b*batchSize+i)
				}
				if err := ix.InsertBatch(ids, pts[b*batchSize:(b+1)*batchSize]); err != nil {
					report(fmt.Errorf("writer batch %d: %w", b, err))
					return
				}
				if b == batches/2 {
					if err := ix.Flush(); err != nil {
						report(fmt.Errorf("mid-run flush: %w", err))
						return
					}
				}
			}
		}()

		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for {
					select {
					case <-writerDone:
						return
					default:
					}
					switch r {
					case 0:
						res, err := SelfAllNearestNeighbors(ix, QueryConfig{Parallelism: 2})
						if err != nil {
							report(fmt.Errorf("reader join: %w", err))
							return
						}
						if d := len(res) - len(base); d < 0 || d%batchSize != 0 {
							report(fmt.Errorf("reader join saw %d results: not a batch boundary", len(res)))
							return
						}
					case 1:
						if _, err := ix.NearestNeighbors(Point{50, 50}, 3); err != nil {
							report(fmt.Errorf("reader NN: %w", err))
							return
						}
					default:
						if d := ix.Len() - len(base); d < 0 || d%batchSize != 0 {
							report(fmt.Errorf("reader Len %d: not a batch boundary", ix.Len()))
							return
						}
						_ = ix.Stats()
					}
				}
			}(r)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			t.Fatalf("%v: %v", kind, err)
		default:
		}

		if got, want := ix.Len(), len(base)+batches*batchSize; got != want {
			t.Fatalf("%v: final Len %d, want %d", kind, got, want)
		}
		checkIntegrity(t, fmt.Sprintf("%v concurrent", kind), ix)
		// All pins must drain once the queries finish.
		if st := ix.Stats(); st.SnapshotPins != 0 {
			t.Fatalf("%v: %d snapshot pins left", kind, st.SnapshotPins)
		}
		ix.RequireNoPinnedFrames(t)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}

		rec, err := OpenIndex(path, IndexConfig{})
		if err != nil {
			t.Fatalf("%v: reopen: %v", kind, err)
		}
		if got, want := rec.Len(), len(base)+batches*batchSize; got != want {
			t.Fatalf("%v: reopened Len %d, want %d", kind, got, want)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures crash recovery: open an index whose WAL
// holds b.N uncheckpointed single-point inserts and replay them. The
// reported ns/op is the full OpenIndex (tree open + replay + the
// post-recovery checkpoint) amortised per logged operation.
func BenchmarkWALReplay(b *testing.B) {
	if b.N > 200_000 {
		b.Skip("WAL op count capped")
	}
	base := basePoints(80, 2, 2)
	path := filepath.Join(b.TempDir(), "replay.pages")
	ix, err := BuildIndex(base, IndexConfig{PageFile: path})
	if err != nil {
		b.Fatal(err)
	}
	pts := randomPoints(81, b.N, 2)
	ids := make([]uint64, b.N)
	for i := range ids {
		ids[i] = 100 + uint64(i)
	}
	if err := ix.InsertBatch(ids, pts); err != nil {
		b.Fatal(err)
	}
	// Crash: abandon without Close so the WAL still holds every insert.
	ix = nil

	b.ResetTimer()
	rec, err := OpenIndex(path, IndexConfig{})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	st := rec.Stats()
	if st.WALReplayed != uint64(b.N) {
		b.Fatalf("replayed %d records, want %d", st.WALReplayed, b.N)
	}
	b.ReportMetric(float64(st.WALReplayNs)/float64(b.N), "replay-ns/op")
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
}
