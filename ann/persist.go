package ann

import (
	"errors"
	"fmt"

	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// OpenIndex opens an index previously built with IndexConfig.PageFile
// and persisted with Flush, skipping the bulk-load entirely — the way a
// long-lived server brings a prebuilt index online. The file's physical
// page framing is verified on open (and every page read re-verifies its
// checksum), so a damaged or foreign file surfaces as a clean error
// wrapping ErrCorruptPage instead of reaching the index decoders. The
// index kind (MBRQT or R*-tree) is detected from the stored header;
// cfg.Kind and cfg.PageFile are ignored.
func OpenIndex(path string, cfg IndexConfig) (*Index, error) {
	store, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	poolBytes := cfg.BufferPoolBytes
	if poolBytes <= 0 {
		poolBytes = 64 << 20
	}
	pool := storage.NewBufferPoolWithConfig(store, storage.FramesForBytes(poolBytes), storage.BufferPoolConfig{
		ReadRetries:     cfg.ReadRetries,
		RetryBackoff:    cfg.RetryBackoff,
		RetryBackoffMax: cfg.RetryBackoffMax,
	})

	// The meta page of a bulk-loaded tree is the first page of its store;
	// the tree kind is detected by which header magic it carries.
	if t, err := mbrqt.Open(pool, 0); err == nil {
		return &Index{tree: t, pool: pool, store: store, size: t.Len(), kind: MBRQT}, nil
	} else if !errors.Is(err, storage.ErrCorruptPage) {
		store.Close()
		return nil, err
	}
	t, err := rstar.Open(pool, 0)
	if err != nil {
		store.Close()
		if errors.Is(err, storage.ErrCorruptPage) {
			return nil, fmt.Errorf("ann: %s holds neither an MBRQT nor an R*-tree header: %w", path, err)
		}
		return nil, err
	}
	return &Index{tree: t, pool: pool, store: store, size: t.Len(), kind: RStar}, nil
}

// Flush persists the index — tree header and all dirty pages — to its
// backing store. Only meaningful for an index built with
// IndexConfig.PageFile (or opened with OpenIndex); for an in-memory
// index it is a harmless no-op. After a Flush the page file can be
// reopened with OpenIndex.
func (ix *Index) Flush() error {
	type flusher interface{ Flush() error }
	if f, ok := ix.tree.(flusher); ok {
		return f.Flush()
	}
	return ix.pool.FlushAll()
}
