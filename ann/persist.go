package ann

import (
	"errors"
	"fmt"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// OpenIndex opens an index previously built with IndexConfig.PageFile,
// skipping the bulk-load entirely — the way a long-lived server brings a
// prebuilt index online. The file's physical page framing is verified on
// open (and every page read re-verifies its checksum), so a damaged or
// foreign file surfaces as a clean error wrapping ErrCorruptPage instead
// of reaching the index decoders. The index kind (MBRQT or R*-tree) is
// detected from the stored header; cfg.Kind and cfg.PageFile are
// ignored.
//
// OpenIndex also runs crash recovery: the write-ahead log next to the
// page file (<path>.wal) is scanned, a torn tail from an interrupted
// append is truncated away, the last checkpoint's header image is
// restored if its write to the page file never completed, and every
// committed mutation since that checkpoint is replayed — then the
// recovered state is checkpointed, so recovery work is never repeated.
// The result is exactly the state after the last mutation batch whose
// commit was acknowledged (plus, possibly, a committed prefix of an
// unacknowledged batch that was interrupted mid-fsync).
func OpenIndex(path string, cfg IndexConfig) (*Index, error) {
	fs, err := storage.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	store := wrapStore(fs)
	wal, err := openWALAt(path + ".wal")
	if err != nil {
		store.Close()
		return nil, err
	}
	fail := func(err error) (*Index, error) {
		wal.Close()
		store.Close()
		return nil, err
	}
	snap, ops, err := wal.Recover()
	if err != nil {
		return fail(fmt.Errorf("ann: WAL recovery: %w", err))
	}
	if snap != nil {
		// The checkpoint's header image reached the WAL but its write to
		// the page file may not have (a crash between the two is exactly
		// the window the WAL copy exists for). Restore it before the tree
		// decodes the header — idempotent when the write did complete.
		if err := store.WritePage(snap.PageID, snap.Page); err != nil {
			return fail(fmt.Errorf("ann: restore checkpoint header: %w", err))
		}
		if err := store.Sync(); err != nil {
			return fail(fmt.Errorf("ann: restore checkpoint header: %w", err))
		}
	}

	poolBytes := cfg.BufferPoolBytes
	if poolBytes <= 0 {
		poolBytes = 64 << 20
	}
	pool := storage.NewBufferPoolWithConfig(store, storage.FramesForBytes(poolBytes), storage.BufferPoolConfig{
		ReadRetries:     cfg.ReadRetries,
		RetryBackoff:    cfg.RetryBackoff,
		RetryBackoffMax: cfg.RetryBackoffMax,
	})

	// The meta page of a bulk-loaded tree is the first page of its store;
	// the tree kind is detected by which header magic it carries.
	var ix *Index
	if t, err := mbrqt.Open(pool, 0); err == nil {
		ix = &Index{tree: t, pool: pool, store: store, size: t.Len(), kind: MBRQT}
	} else if !errors.Is(err, storage.ErrCorruptPage) {
		return fail(err)
	} else {
		t, err := rstar.Open(pool, 0)
		if err != nil {
			if errors.Is(err, storage.ErrCorruptPage) {
				return fail(fmt.Errorf("ann: %s holds neither an MBRQT nor an R*-tree header: %w", path, err))
			}
			return fail(err)
		}
		ix = &Index{tree: t, pool: pool, store: store, size: t.Len(), kind: RStar}
	}
	ix.ckptEveryBytes = cfg.CheckpointEveryBytes

	ix.enableLiveUpdates(wal)
	if snap != nil || len(ops) > 0 {
		for _, op := range ops {
			switch {
			case op.IsWALInsert():
				err = ix.mut.Insert(index.ObjectID(op.ID), geom.Point(op.Point))
			case op.IsWALDelete():
				_, err = ix.mut.Delete(index.ObjectID(op.ID), geom.Point(op.Point))
			}
			if err != nil {
				return fail(fmt.Errorf("ann: WAL replay: %w", err))
			}
		}
		ix.size = ix.mut.Len()
		ix.publishLocked()
		// Fold the replayed state into a fresh checkpoint so the next open
		// starts clean; this also truncates the log.
		if err := ix.checkpointLocked(); err != nil {
			return fail(fmt.Errorf("ann: post-recovery checkpoint: %w", err))
		}
	}
	return ix, nil
}

// Flush checkpoints the index: all updates since the previous checkpoint
// become part of the durable base state in the page file and the
// write-ahead log is truncated. Only meaningful for an index built with
// IndexConfig.PageFile (or opened with OpenIndex); for an in-memory
// index it is a harmless no-op. After a Flush the page file can be
// reopened with OpenIndex — though that is equally true at any instant,
// via WAL replay; Flush just bounds the replay work.
func (ix *Index) Flush() error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.mut != nil {
		if ix.writeErr != nil {
			return ix.writeErr
		}
		return ix.checkpointLocked()
	}
	type flusher interface{ Flush() error }
	if f, ok := ix.tree.(flusher); ok {
		return f.Flush()
	}
	return ix.pool.FlushAll()
}
