package ann

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestAutoCheckpointBoundsWAL drives a sustained insert load against a
// file-backed index configured with a small CheckpointEveryBytes budget
// and verifies the policy actually bounds the log: the WAL shrinks
// (truncates) repeatedly instead of growing monotonically, the
// checkpoint counter advances, the observed log size never exceeds the
// budget between batches, and the index reopens with every insert
// intact.
func TestAutoCheckpointBoundsWAL(t *testing.T) {
	const (
		budget    = int64(2 << 10)
		batches   = 40
		batchSize = 8
	)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			base := basePoints(81, 64, 2)
			path := filepath.Join(t.TempDir(), "auto.pages")
			ix, err := BuildIndex(base, IndexConfig{Kind: kind, PageFile: path, CheckpointEveryBytes: budget})
			if err != nil {
				t.Fatal(err)
			}
			startCkpts := ix.Stats().WALCheckpoints

			shrank := false
			prev := ix.wal.Size()
			nextID := uint64(5000)
			for batch := 0; batch < batches; batch++ {
				pts := randomPoints(int64(300+batch), batchSize, 2)
				ids := make([]uint64, batchSize)
				for i := range ids {
					ids[i] = nextID
					nextID++
				}
				if err := ix.InsertBatch(ids, pts); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				sz := ix.wal.Size()
				if sz < prev {
					shrank = true
				}
				// The triggering batch checkpoints before returning, so a
				// caller can never observe the log above its budget.
				if sz > budget {
					t.Fatalf("batch %d: WAL at %d bytes exceeds the %d-byte budget", batch, sz, budget)
				}
				prev = sz
			}
			if !shrank {
				t.Fatalf("WAL never shrank across %d batches (final size %d)", batches, prev)
			}
			if got := ix.Stats().WALCheckpoints; got <= startCkpts {
				t.Fatalf("checkpoint counter stuck at %d despite sustained load", got)
			}
			if fi, err := os.Stat(path + ".wal"); err != nil {
				t.Fatal(err)
			} else if fi.Size() > budget+4096 {
				t.Fatalf("WAL file is %d bytes on disk, budget is %d", fi.Size(), budget)
			}
			wantLen := ix.Len()
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenIndex(path, IndexConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Len(); got != wantLen {
				t.Fatalf("reopened index holds %d points, want %d", got, wantLen)
			}
			if got := int64(64 + batches*batchSize); int64(wantLen) != got {
				t.Fatalf("index holds %d points before close, want %d", wantLen, got)
			}
		})
	}
}

// TestAutoCheckpointDisabledByDefault verifies the zero-value config
// leaves checkpoint cadence manual: the WAL grows monotonically across
// batches until an explicit Flush truncates it.
func TestAutoCheckpointDisabledByDefault(t *testing.T) {
	base := basePoints(82, 64, 2)
	path := filepath.Join(t.TempDir(), "manual.pages")
	ix, err := BuildIndex(base, IndexConfig{PageFile: path})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	prev := ix.wal.Size()
	nextID := uint64(9000)
	for batch := 0; batch < 10; batch++ {
		pts := randomPoints(int64(400+batch), 8, 2)
		ids := make([]uint64, len(pts))
		for i := range ids {
			ids[i] = nextID
			nextID++
		}
		if err := ix.InsertBatch(ids, pts); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		sz := ix.wal.Size()
		if sz <= prev {
			t.Fatalf("batch %d: WAL did not grow (%d -> %d) with auto-checkpoint disabled", batch, prev, sz)
		}
		prev = sz
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if sz := ix.wal.Size(); sz != 0 {
		t.Fatalf("WAL holds %d bytes after explicit Flush", sz)
	}
}
