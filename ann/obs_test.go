package ann

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestQueryObservability drives the public observability surface end to
// end: TraceOut receives parseable Chrome trace-event JSON, OnReport
// receives a QueryReport consistent with the emitted results, and a
// shared MetricsRegistry accumulates the counters across queries.
func TestQueryObservability(t *testing.T) {
	pts := randomPoints(3, 300, 2)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	var reports []QueryReport
	metrics := NewMetricsRegistry()
	cfg := QueryConfig{
		TraceOut: &trace,
		Metrics:  metrics,
		OnReport: func(rep QueryReport) { reports = append(reports, rep) },
	}

	results, err := SelfAllKNearestNeighbors(ix, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pts) {
		t.Fatalf("got %d results, want %d", len(results), len(pts))
	}

	if len(reports) != 1 {
		t.Fatalf("OnReport fired %d times, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Engine.Results != uint64(len(pts)) {
		t.Fatalf("report results = %d, want %d", rep.Engine.Results, len(pts))
	}
	if rep.Timings.Wall <= 0 {
		t.Fatalf("report wall time = %v, want > 0", rep.Timings.Wall)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("TraceOut is not valid trace JSON: %v", err)
	}
	sawQuery := false
	for _, e := range doc.TraceEvents {
		if e.Name == "query" && e.Ph == "X" {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Fatal("trace has no query span")
	}

	// A second run accumulates into the same registry.
	cfg2 := QueryConfig{Metrics: metrics}
	if _, err := SelfAllKNearestNeighbors(ix, 1, cfg2); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := metrics.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	var s struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(snap.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Counters["engine.results"], uint64(2*len(pts)); got != want {
		t.Fatalf("engine.results after two runs = %d, want %d", got, want)
	}

	// The registry serves the same snapshot over HTTP.
	srv := httptest.NewServer(metrics.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Counters["engine.results"] != s.Counters["engine.results"] {
		t.Fatalf("served snapshot differs: %d vs %d",
			served.Counters["engine.results"], s.Counters["engine.results"])
	}
}

// TestNilMetricsRegistry: a nil registry is the disabled state and every
// method must still be callable.
func TestNilMetricsRegistry(t *testing.T) {
	var m *MetricsRegistry
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if m.Handler() == nil {
		t.Fatal("nil registry Handler must still serve (an empty snapshot)")
	}
}
