// Package client is the typed Go client for annserve. One Client owns
// one TCP connection, reused across requests; methods are safe for
// concurrent use (requests serialise over the connection, matching the
// server's sequential per-connection processing). Context deadlines
// propagate to the server in the request header, so the server aborts
// the query engine-side when the budget runs out — the client does not
// just stop listening.
package client

import (
	"context"
	"fmt"
	"net"
	"time"

	"allnn/ann"
	"allnn/internal/wire"
)

// ioGrace is added to socket deadlines beyond the request deadline, so
// the server's own DEADLINE_EXCEEDED reply (the authoritative one) wins
// the race against the client's socket timeout.
const ioGrace = 2 * time.Second

// IndexInfo describes one catalog index.
type IndexInfo struct {
	Name   string
	Kind   ann.IndexKind
	Points int
	Dim    int
}

// Client is a connection to an annserve server.
type Client struct {
	conn net.Conn
	// reqMu serialises whole requests (including streamed responses)
	// over the connection.
	reqMu  chanMutex
	nextID uint64
	encBuf []byte
}

// chanMutex is a mutex that can also be acquired with a context.
type chanMutex chan struct{}

func (m chanMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chanMutex) unlock() { <-m }

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by a context.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(dl)
	}
	if err := wire.WriteHandshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	return &Client{conn: conn, reqMu: make(chanMutex, 1)}, nil
}

// Close closes the connection. In-flight requests fail.
func (c *Client) Close() error { return c.conn.Close() }

// --- error classification ---------------------------------------------------

// IsBusy reports whether err is the server's SERVER_BUSY rejection.
func IsBusy(err error) bool { return wire.IsCode(err, wire.CodeServerBusy) }

// IsDeadlineExceeded reports whether err is the server's
// DEADLINE_EXCEEDED rejection.
func IsDeadlineExceeded(err error) bool { return wire.IsCode(err, wire.CodeDeadlineExceeded) }

// IsNotFound reports whether err means a missing index (or file).
func IsNotFound(err error) bool { return wire.IsCode(err, wire.CodeNotFound) }

// IsShuttingDown reports whether err is the server's drain rejection.
func IsShuttingDown(err error) bool { return wire.IsCode(err, wire.CodeShuttingDown) }

// IsBadRequest reports whether the server rejected the request as
// malformed or semantically invalid.
func IsBadRequest(err error) bool { return wire.IsCode(err, wire.CodeBadRequest) }

// IsCorruptIndex reports whether an index file failed verification.
func IsCorruptIndex(err error) bool { return wire.IsCode(err, wire.CodeCorruptIndex) }

// IsShardUnavailable reports whether a strict-mode router failed the
// request because a shard's backend was down (after retries).
func IsShardUnavailable(err error) bool { return wire.IsCode(err, wire.CodeShardUnavailable) }

// IsPartialResult reports whether a degraded-mode router served the
// request with one or more shards unavailable. For queries returning
// data alongside this error (KNN, BatchKNN, Range) the data is the
// partial gather; for streams, everything received before the error is
// exact for the shards that answered.
func IsPartialResult(err error) bool { return wire.IsCode(err, wire.CodePartialResult) }

// IsWriteFailed reports whether err is the server's WRITE_FAILED error:
// an Insert/Delete batch could not be made durable (failed log append or
// fsync). The index refuses further writes until reopened; the failed
// batch's durability is indeterminate — after a server crash, recovery
// may surface a committed prefix of it.
func IsWriteFailed(err error) bool { return wire.IsCode(err, wire.CodeWriteFailed) }

// --- request plumbing -------------------------------------------------------

// begin acquires the connection and writes the request, returning its
// id. The caller must call c.reqMu.unlock() once done reading frames.
// opts carries the approximate-query header knobs; the zero value (the
// only value non-join ops may pass) encodes the unextended header.
func (c *Client) begin(ctx context.Context, op wire.Op, body wire.Message, opts JoinOptions) (uint64, error) {
	if err := c.reqMu.lock(ctx); err != nil {
		return 0, err
	}
	c.nextID++
	hdr := wire.RequestHeader{ID: c.nextID, Op: op,
		Epsilon: opts.Epsilon, RecallTarget: opts.RecallTarget,
		TraceID: opts.TraceID, WantReport: opts.WantReport}
	if dl, ok := ctx.Deadline(); ok {
		hdr.Timeout = time.Until(dl)
		if hdr.Timeout <= 0 {
			c.reqMu.unlock()
			return 0, context.DeadlineExceeded
		}
		c.conn.SetDeadline(dl.Add(ioGrace))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	payload, err := wire.EncodeRequest(hdr, body, c.encBuf)
	if err != nil {
		c.reqMu.unlock()
		return 0, err
	}
	c.encBuf = payload
	if err := wire.WriteFrame(c.conn, payload); err != nil {
		c.reqMu.unlock()
		return 0, fmt.Errorf("client: sending %s request: %w", op, err)
	}
	return hdr.ID, nil
}

// readReply reads one response frame for request id, mapping KindError
// frames to *wire.Error.
func (c *Client) readReply(id uint64) (wire.ResponseKind, wire.Message, error) {
	payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, nil, fmt.Errorf("client: reading response: %w", err)
	}
	gotID, kind, _, body, err := wire.DecodeResponse(payload)
	if err != nil {
		return 0, nil, err
	}
	if gotID != id {
		return 0, nil, fmt.Errorf("client: response for request %d while awaiting %d", gotID, id)
	}
	if kind == wire.KindError {
		er := body.(*wire.ErrorReply)
		return kind, nil, &wire.Error{Code: er.Code, Msg: er.Msg}
	}
	return kind, body, nil
}

// roundTrip performs a non-streaming request and returns the single
// KindResult body.
func (c *Client) roundTrip(ctx context.Context, op wire.Op, body wire.Message) (wire.Message, error) {
	id, err := c.begin(ctx, op, body, JoinOptions{})
	if err != nil {
		return nil, err
	}
	defer c.reqMu.unlock()
	kind, reply, err := c.readReply(id)
	if err != nil {
		return nil, err
	}
	if kind != wire.KindResult {
		return nil, fmt.Errorf("client: unexpected frame kind %d for %s", kind, op)
	}
	return reply, nil
}

// --- catalog ops ------------------------------------------------------------

// Open loads the index file at path into the server's catalog as name.
func (c *Client) Open(ctx context.Context, name, path string) (IndexInfo, error) {
	reply, err := c.roundTrip(ctx, wire.OpOpen, &wire.OpenReq{Name: name, Path: path})
	if err != nil {
		return IndexInfo{}, err
	}
	return toIndexInfo(reply.(*wire.OpenReply).Info), nil
}

// CloseIndex removes name from the server's catalog and closes it.
func (c *Client) CloseIndex(ctx context.Context, name string) error {
	_, err := c.roundTrip(ctx, wire.OpClose, &wire.CloseReq{Name: name})
	return err
}

// List enumerates the server's catalog.
func (c *Client) List(ctx context.Context) ([]IndexInfo, error) {
	reply, err := c.roundTrip(ctx, wire.OpList, &wire.ListReq{})
	if err != nil {
		return nil, err
	}
	infos := reply.(*wire.ListReply).Indexes
	out := make([]IndexInfo, len(infos))
	for i, info := range infos {
		out[i] = toIndexInfo(info)
	}
	return out, nil
}

// Stats snapshots one catalog index's storage counters.
func (c *Client) Stats(ctx context.Context, name string) (ann.IndexStats, error) {
	reply, err := c.roundTrip(ctx, wire.OpStats, &wire.StatsReq{Name: name})
	if err != nil {
		return ann.IndexStats{}, err
	}
	st := reply.(*wire.StatsReply)
	return ann.IndexStats{
		Points: int(st.Info.Points),
		Dim:    int(st.Info.Dim),
		Kind:   ann.IndexKind(st.Info.Kind),

		PoolHits:         st.PoolHits,
		PoolMisses:       st.PoolMisses,
		PoolReads:        st.PoolReads,
		PoolWrites:       st.PoolWrites,
		PoolEvictions:    st.PoolEvictions,
		PoolRetries:      st.PoolRetries,
		PoolCorruptPages: st.PoolCorruptPages,
		PinnedFrames:     int(st.PinnedFrames),

		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		CacheEvictions:     st.CacheEvictions,
		CacheInvalidations: st.CacheInvalidations,
		CacheEntries:       int(st.CacheEntries),
		CacheBytes:         int64(st.CacheBytes),

		WALRecords:     st.WALRecords,
		WALFsyncs:      st.WALFsyncs,
		WALCheckpoints: st.WALCheckpoints,
		WALReplayed:    st.WALReplayed,
		WALReplayNs:    int64(st.WALReplayNs),
		SnapshotPins:   int64(st.SnapshotPins),
	}, nil
}

// --- mutations --------------------------------------------------------------

// Insert durably adds a batch of points to a live catalog index; ids and
// points are parallel slices. The whole batch is committed with one log
// fsync — a nil error means all of it survives any crash — and becomes
// visible atomically: queries never observe a partial batch. Returns the
// index's point count after the batch.
func (c *Client) Insert(ctx context.Context, index string, ids []uint64, points []ann.Point) (size uint64, err error) {
	pts := make([][]float64, len(points))
	for i, p := range points {
		pts[i] = p
	}
	reply, err := c.roundTrip(ctx, wire.OpInsert, &wire.InsertReq{Index: index, IDs: ids, Points: pts})
	if err != nil {
		return 0, err
	}
	return reply.(*wire.InsertReply).Size, nil
}

// Delete durably removes a batch of points (matched by id AND
// coordinates) from a live catalog index, with the same commit and
// visibility guarantees as Insert. Returns how many entries matched an
// indexed point and the index's point count after the batch; absent
// points are durable no-ops.
func (c *Client) Delete(ctx context.Context, index string, ids []uint64, points []ann.Point) (found, size uint64, err error) {
	pts := make([][]float64, len(points))
	for i, p := range points {
		pts[i] = p
	}
	reply, err := c.roundTrip(ctx, wire.OpDelete, &wire.DeleteReq{Index: index, IDs: ids, Points: pts})
	if err != nil {
		return 0, 0, err
	}
	rep := reply.(*wire.DeleteReply)
	return rep.Found, rep.Size, nil
}

// --- queries ----------------------------------------------------------------

// KNN returns the k nearest indexed points to q in the named index.
// Against a degraded-mode router with a dead shard, the neighbors are
// returned alongside a non-nil error satisfying IsPartialResult.
func (c *Client) KNN(ctx context.Context, index string, q ann.Point, k int) ([]ann.Neighbor, error) {
	reply, err := c.roundTrip(ctx, wire.OpKNN, &wire.KNNReq{Index: index, K: uint32(k), Point: q})
	if err != nil {
		return nil, err
	}
	rep := reply.(*wire.KNNReply)
	return toNeighbors(rep.Neighbors), partialErr(rep.Partial)
}

// BatchKNN answers one kNN probe per query point in a single request;
// results come back in request order with IDs 0..len(qs)-1.
func (c *Client) BatchKNN(ctx context.Context, index string, qs []ann.Point, k int) ([]ann.Result, error) {
	pts := make([][]float64, len(qs))
	for i, q := range qs {
		pts[i] = q
	}
	reply, err := c.roundTrip(ctx, wire.OpBatchKNN, &wire.BatchKNNReq{Index: index, K: uint32(k), Points: pts})
	if err != nil {
		return nil, err
	}
	rep := reply.(*wire.BatchKNNReply)
	return toResults(rep.Results), partialErr(rep.Partial)
}

// Range returns the ids of the indexed points inside the box [lo, hi].
func (c *Client) Range(ctx context.Context, index string, lo, hi ann.Point) ([]uint64, error) {
	reply, err := c.roundTrip(ctx, wire.OpRange, &wire.RangeReq{Index: index, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	rep := reply.(*wire.RangeReply)
	return rep.IDs, partialErr(rep.Partial)
}

// RangePoints returns the ids AND coordinates of the indexed points
// inside the box [lo, hi] — the boundary-strip fetch routed
// within-distance queries are built on. Requires a protocol version 2
// server.
func (c *Client) RangePoints(ctx context.Context, index string, lo, hi ann.Point) ([]uint64, []ann.Point, error) {
	reply, err := c.roundTrip(ctx, wire.OpRangePoints, &wire.RangePointsReq{Index: index, Lo: lo, Hi: hi})
	if err != nil {
		return nil, nil, err
	}
	rep := reply.(*wire.RangePointsReply)
	pts := make([]ann.Point, len(rep.Points))
	for i, p := range rep.Points {
		pts[i] = p
	}
	return rep.IDs, pts, partialErr(rep.Partial)
}

// ShardMap fetches the shard topology of a routed dataset from an
// annrouter. A plain annserve answers BAD_REQUEST (IsBadRequest).
func (c *Client) ShardMap(ctx context.Context, name string) (wire.ShardMap, error) {
	reply, err := c.roundTrip(ctx, wire.OpShardMap, &wire.ShardMapReq{Name: name})
	if err != nil {
		return wire.ShardMap{}, err
	}
	return reply.(*wire.ShardMapReply).Map, nil
}

// partialErr converts a reply's PartialInfo block into the typed
// PARTIAL_RESULT error (nil for a complete reply).
func partialErr(p *wire.PartialInfo) error {
	if p == nil {
		return nil
	}
	return &wire.Error{Code: wire.CodePartialResult,
		Msg: fmt.Sprintf("shards unavailable: %v", p.Missing)}
}

// ClosestPairs returns the k closest (r, s) pairs across two catalog
// indexes (pass the same name twice with excludeSelf for a self-join).
func (c *Client) ClosestPairs(ctx context.Context, r, s string, k int, excludeSelf bool) ([]ann.Pair, error) {
	reply, err := c.roundTrip(ctx, wire.OpClosestPairs, &wire.PairsReq{R: r, S: s, K: uint32(k), ExcludeSelf: excludeSelf})
	if err != nil {
		return nil, err
	}
	pairs := reply.(*wire.PairsReply).Pairs
	out := make([]ann.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = ann.Pair{R: p.R, S: p.S, Dist: p.Dist}
	}
	return out, nil
}

// WithinDistance streams every (r, s) pair within dist to emit,
// returning the total pair count. Pass the same name twice with
// excludeSelf for a self-join.
func (c *Client) WithinDistance(ctx context.Context, r, s string, dist float64, excludeSelf bool, emit func(rID, sID uint64, dist float64) error) (uint64, error) {
	id, err := c.begin(ctx, wire.OpWithinDistance, &wire.WithinReq{R: r, S: s, Dist: dist, ExcludeSelf: excludeSelf}, JoinOptions{})
	if err != nil {
		return 0, err
	}
	defer c.reqMu.unlock()
	var total uint64
	for {
		kind, body, err := c.readReply(id)
		if err != nil {
			return total, err
		}
		switch kind {
		case wire.KindStream:
			for _, p := range body.(*wire.PairFrame).Pairs {
				total++
				if err := emit(p.R, p.S, p.Dist); err != nil {
					// The caller aborted; the connection still carries
					// the rest of the stream, so it must be drained
					// before the next request can use it.
					c.drain(id)
					return total, err
				}
			}
		case wire.KindEnd:
			return total, nil
		default:
			return total, fmt.Errorf("client: unexpected frame kind %d in pair stream", kind)
		}
	}
}

// drain consumes frames for request id until its stream terminates,
// keeping the connection usable after an abandoned stream.
func (c *Client) drain(id uint64) {
	for {
		kind, _, err := c.readReply(id)
		if err != nil || kind == wire.KindEnd {
			return
		}
	}
}

// --- streaming joins --------------------------------------------------------

// JoinStream iterates the results of a served ANN/AkNN join as they
// arrive. The owning Client is busy until the stream is exhausted or
// closed.
type JoinStream struct {
	c      *Client
	id     uint64
	buf    []wire.Result
	pos    int
	cur    ann.Result
	count  uint64
	report *QueryReport
	err    error
	done   bool
	closed bool
}

// JoinOptions carries the approximate-query knobs of a served join; see
// ann.QueryConfig.Epsilon and ann.QueryConfig.RecallTarget. The zero
// value requests the exact join every pre-extension client gets, and
// encodes to the identical wire frame.
type JoinOptions struct {
	// Epsilon requests a (1+ε)-approximate join: every returned distance
	// is within (1+Epsilon) of the true k-th nearest distance. 0 is
	// exact.
	Epsilon float64
	// RecallTarget, in (0,1), makes the server's leaf joins serve that
	// fraction of each leaf's query points exactly and the rest
	// approximately. 0 (and 1) is exact.
	RecallTarget float64
	// TraceID labels the request end to end: it appears in the server's
	// structured logs, slow-query entries, /debug/requests rows and the
	// returned report. Up to 128 printable non-space ASCII characters
	// (no quotes or backslashes); the empty string sends no ID.
	TraceID string
	// WantReport asks the server to attach its QueryReport to the end
	// of the stream, retrievable via JoinStream.Report. Servers predating
	// the extension reject the request as BAD_REQUEST.
	WantReport bool
}

// Join starts AllKNearestNeighbors(r, s, k) server-side and returns the
// result stream.
func (c *Client) Join(ctx context.Context, r, s string, k int) (*JoinStream, error) {
	return c.startJoin(ctx, &wire.JoinReq{R: r, S: s, K: uint32(k)}, JoinOptions{})
}

// JoinApprox is Join with approximate-query knobs. The server rejects
// invalid knob values as BAD_REQUEST (IsBadRequest).
func (c *Client) JoinApprox(ctx context.Context, r, s string, k int, opts JoinOptions) (*JoinStream, error) {
	return c.startJoin(ctx, &wire.JoinReq{R: r, S: s, K: uint32(k)}, opts)
}

// SelfJoin starts SelfAllKNearestNeighbors(index, k) server-side and
// returns the result stream.
func (c *Client) SelfJoin(ctx context.Context, index string, k int) (*JoinStream, error) {
	return c.startJoin(ctx, &wire.JoinReq{R: index, K: uint32(k), Self: true}, JoinOptions{})
}

// SelfJoinApprox is SelfJoin with approximate-query knobs.
func (c *Client) SelfJoinApprox(ctx context.Context, index string, k int, opts JoinOptions) (*JoinStream, error) {
	return c.startJoin(ctx, &wire.JoinReq{R: index, K: uint32(k), Self: true}, opts)
}

func (c *Client) startJoin(ctx context.Context, req *wire.JoinReq, opts JoinOptions) (*JoinStream, error) {
	id, err := c.begin(ctx, wire.OpJoin, req, opts)
	if err != nil {
		return nil, err
	}
	return &JoinStream{c: c, id: id}, nil
}

// Next advances to the next result, reporting false at the end of the
// stream or on error (check Err).
func (st *JoinStream) Next() bool {
	if st.done {
		return false
	}
	for st.pos >= len(st.buf) {
		kind, body, err := st.c.readReply(st.id)
		if err != nil {
			st.finish(err)
			return false
		}
		switch kind {
		case wire.KindStream:
			st.buf = body.(*wire.JoinFrame).Results
			st.pos = 0
		case wire.KindEnd:
			end := body.(*wire.StreamEnd)
			st.count = end.Count
			if end.Report != nil {
				st.report = reportFromWire(end.Report)
			}
			st.finish(nil)
			return false
		default:
			st.finish(fmt.Errorf("client: unexpected frame kind %d in join stream", kind))
			return false
		}
	}
	r := st.buf[st.pos]
	st.pos++
	st.cur = ann.Result{ID: r.ID, Point: r.Point, Neighbors: toNeighbors(r.Neighbors)}
	return true
}

// Result returns the result Next advanced to.
func (st *JoinStream) Result() ann.Result { return st.cur }

// Err returns the terminal error, if any, once Next has returned false.
func (st *JoinStream) Err() error { return st.err }

// Count returns the server-reported total after a clean end of stream.
func (st *JoinStream) Count() uint64 { return st.count }

// Report returns the server's query report after a clean end of stream,
// or nil when the join was started without JoinOptions.WantReport (or
// the stream ended early).
func (st *JoinStream) Report() *QueryReport { return st.report }

// Close releases the connection for the next request, draining any
// remaining frames of an abandoned stream. It is safe to call twice.
func (st *JoinStream) Close() error {
	if st.closed {
		return st.err
	}
	if !st.done {
		st.c.drain(st.id)
		st.done = true
	}
	st.closed = true
	st.c.reqMu.unlock()
	return st.err
}

// finish records the terminal state and releases the connection.
func (st *JoinStream) finish(err error) {
	st.err = err
	st.done = true
	if !st.closed {
		st.closed = true
		st.c.reqMu.unlock()
	}
}

// --- conversions ------------------------------------------------------------

func toIndexInfo(info wire.IndexInfo) IndexInfo {
	return IndexInfo{
		Name:   info.Name,
		Kind:   ann.IndexKind(info.Kind),
		Points: int(info.Points),
		Dim:    int(info.Dim),
	}
}

func toNeighbors(nbs []wire.Neighbor) []ann.Neighbor {
	if nbs == nil {
		return nil
	}
	out := make([]ann.Neighbor, len(nbs))
	for i, n := range nbs {
		out[i] = ann.Neighbor{ID: n.ID, Point: n.Point, Dist: n.Dist}
	}
	return out
}

func toResults(rs []wire.Result) []ann.Result {
	out := make([]ann.Result, len(rs))
	for i, r := range rs {
		out[i] = ann.Result{ID: r.ID, Point: r.Point, Neighbors: toNeighbors(r.Neighbors)}
	}
	return out
}
