package client

import (
	"time"

	"allnn/ann"
	"allnn/internal/nodecache"
	"allnn/internal/storage"
	"allnn/internal/wire"
)

// QueryReport is the server-produced observability record for one
// remote join, requested with JoinOptions.WantReport. It carries the
// same engine/pool/cache/timings breakdown a local ann.QueryConfig
// OnReport callback would receive, plus the service-side costs only
// the server can measure.
type QueryReport struct {
	ann.QueryReport

	// TraceID echoes the request's trace ID (JoinOptions.TraceID).
	TraceID string
	// AdmissionWait is the time the request spent queued for an
	// execution slot before the engine started.
	AdmissionWait time.Duration
	// EngineTime is the server-side wall time of the engine run,
	// excluding flushes of result frames that happened mid-run.
	EngineTime time.Duration
	// FlushTime is the total time the server spent encoding and
	// writing response frames for this request.
	FlushTime time.Duration
	// BytesIn and BytesOut are the request's wire footprint as the
	// server measured it. BytesOut excludes the final StreamEnd frame
	// that carries this report.
	BytesIn  uint64
	BytesOut uint64
}

// reportFromWire unflattens the wire form back into the client report.
// It is the inverse of the server's reqCtx.wireReport.
func reportFromWire(w *wire.Report) *QueryReport {
	r := &QueryReport{
		TraceID:       w.TraceID,
		AdmissionWait: time.Duration(w.AdmissionWaitNs),
		EngineTime:    time.Duration(w.EngineNs),
		FlushTime:     time.Duration(w.FlushNs),
		BytesIn:       w.BytesIn,
		BytesOut:      w.BytesOut,
	}
	r.Engine = ann.Stats{
		DistanceCalcs:   w.EngineDistanceCalcs,
		LPQsCreated:     w.EngineLPQsCreated,
		Enqueued:        w.EngineEnqueued,
		PrunedOnProbe:   w.EnginePrunedOnProbe,
		PrunedByFilter:  w.EnginePrunedByFilter,
		NodesExpandedR:  w.EngineNodesExpandedR,
		NodesExpandedS:  w.EngineNodesExpandedS,
		Results:         w.EngineResults,
		NodeCacheHits:   w.EngineNodeCacheHits,
		NodeCacheMisses: w.EngineNodeCacheMisses,
		PrunedSubtrees:  w.EnginePrunedSubtrees,
		PrunedEntries:   w.EnginePrunedEntries,
		LPQEarlyTerms:   w.EngineLPQEarlyTerms,
	}
	r.Pool = storage.Stats{
		Hits:         w.PoolHits,
		Misses:       w.PoolMisses,
		Reads:        w.PoolReads,
		Writes:       w.PoolWrites,
		Evictions:    w.PoolEvictions,
		Retries:      w.PoolRetries,
		CorruptPages: w.PoolCorruptPages,
	}
	r.Cache = nodecache.Counters{
		Hits:          w.CacheHits,
		Misses:        w.CacheMisses,
		Evictions:     w.CacheEvictions,
		Invalidations: w.CacheInvalidations,
	}
	r.CacheResidency = nodecache.Residency{
		Entries: int(w.CacheEntries),
		Bytes:   w.CacheBytes,
	}
	r.Timings = ann.Timings{
		Wall:     time.Duration(w.WallNs),
		Setup:    time.Duration(w.SetupNs),
		Seed:     time.Duration(w.SeedNs),
		Frontier: time.Duration(w.FrontierNs),
		Traverse: time.Duration(w.TraverseNs),
		Expand:   time.Duration(w.ExpandNs),
		Filter:   time.Duration(w.FilterNs),
		Gather:   time.Duration(w.GatherNs),
	}
	r.Sched = ann.SchedStats{
		Tasks:           w.SchedTasks,
		Steals:          w.SchedSteals,
		Splits:          w.SchedSplits,
		KernelBlocks:    w.SchedKernelBlocks,
		KernelPairs:     w.SchedKernelPairs,
		KernelEarlyOuts: w.SchedKernelEarlyOuts,
	}
	return r
}
