package client

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// DialConfig tunes DialRetry's capped jittered exponential backoff —
// the same retry discipline the storage layer applies to transient page
// reads (storage.BufferPoolConfig), applied to connection establishment.
// The zero value selects the defaults.
type DialConfig struct {
	// Retries is how many times to retry after the first failed attempt
	// (so Retries+1 attempts total). Default 5.
	Retries int
	// Backoff is the wait before the first retry; it doubles per attempt.
	// Default 25ms.
	Backoff time.Duration
	// BackoffMax caps the doubling. Default 1s.
	BackoffMax time.Duration
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.Retries == 0 {
		cfg.Retries = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	return cfg
}

// DialRetry is DialContext with capped jittered exponential backoff on
// dial and handshake failure. A freshly restarted or not-yet-listening
// server refuses connections for a moment; plain Dial surfaces the
// first ECONNREFUSED, while DialRetry rides it out. Context
// cancellation or expiry stops the retry loop immediately and is never
// retried; every other dial/handshake failure is treated as transient
// (connection refused, reset mid-handshake, resolver hiccups) because a
// non-transient cause — wrong address, version mismatch — exhausts the
// bounded attempt budget in a bounded time anyway.
func DialRetry(ctx context.Context, addr string, cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	backoff := cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			// Full jitter in [backoff/2, backoff): desynchronises a fleet
			// of clients reconnecting to the same restarted backend.
			wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, errors.Join(ctx.Err(), lastErr)
			}
			backoff *= 2
			if backoff > cfg.BackoffMax {
				backoff = cfg.BackoffMax
			}
		}
		c, err := DialContext(ctx, addr)
		if err == nil {
			return c, nil
		}
		if ctx.Err() != nil {
			return nil, errors.Join(ctx.Err(), err)
		}
		lastErr = err
	}
	return nil, lastErr
}
