package client

import (
	"context"
	"net"
	"testing"
	"time"

	"allnn/internal/wire"
)

// TestDialRetryRidesOutRefusedConnections reserves a port, keeps it
// closed through the first attempts, then starts listening: plain Dial
// fails immediately, DialRetry connects once the listener is up.
func TestDialRetryRidesOutRefusedConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // port now refuses connections

	if _, err := Dial(addr); err == nil {
		t.Fatal("plain Dial succeeded against a closed port")
	}

	// Re-listen shortly after DialRetry starts knocking.
	errc := make(chan error, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			errc <- err
			return
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		errc <- wire.ReadHandshake(conn)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialRetry(ctx, addr, DialConfig{Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer c.Close()
	if err := <-errc; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

// TestDialRetryStopsOnCancel verifies cancellation cuts the backoff
// loop short instead of burning the full attempt budget.
func TestDialRetryStopsOnCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialRetry(ctx, addr, DialConfig{Retries: 50, Backoff: 30 * time.Millisecond, BackoffMax: 30 * time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry succeeded against a closed port")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DialRetry ran %v past its context", elapsed)
	}
}

// TestDialRetryExhaustsBudget verifies the bounded attempt budget
// surfaces the last dial error.
func TestDialRetryExhaustsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = DialRetry(context.Background(), addr, DialConfig{Retries: 2, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry succeeded against a closed port")
	}
}
