package ann

import (
	"io"
	"net/http"

	"allnn/internal/core"
	"allnn/internal/obs"
)

// QueryReport is the unified per-query observability record produced via
// QueryConfig.OnReport: the engine's work counters, the buffer-pool and
// decoded-node-cache activity attributable to the run, and the
// wall-time breakdown across the paper's Expand/Filter/Gather stages.
// It marshals to stable JSON (see EXPERIMENTS.md for reproducing the
// paper's counter tables from it).
type QueryReport = core.QueryReport

// Stats, Timings and SchedStats name the nested sections of QueryReport
// so report consumers (the remote client included) can build or match
// them without importing internal packages.
type (
	Stats      = core.Stats
	Timings    = core.Timings
	SchedStats = core.SchedStats
)

// MetricsRegistry accumulates query metrics across runs: counters,
// gauges and histograms under stable "family.metric" names (DESIGN.md
// §10 catalogues them). One registry may be shared by any number of
// concurrent queries. The zero value is not usable; create one with
// NewMetricsRegistry. A nil *MetricsRegistry disables metrics.
type MetricsRegistry struct {
	reg *obs.Registry
}

// NewMetricsRegistry creates an empty registry.
func NewMetricsRegistry() *MetricsRegistry {
	return &MetricsRegistry{reg: obs.NewRegistry()}
}

// registry returns the wrapped registry (nil for a nil wrapper), which
// is what the engine consumes.
func (m *MetricsRegistry) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// WriteJSON writes a point-in-time snapshot of every metric as indented
// JSON.
func (m *MetricsRegistry) WriteJSON(w io.Writer) error {
	return m.registry().WriteJSON(w)
}

// Handler returns an http.Handler serving the JSON snapshot — the
// endpoint behind the cmd tools' -metrics-addr flag.
func (m *MetricsRegistry) Handler() http.Handler { return m.registry() }

// Serve starts a background HTTP server on addr exposing /metrics (the
// snapshot) and /debug/pprof/, returning the bound address (useful with
// ":0"). The server lives until the process exits.
func (m *MetricsRegistry) Serve(addr string) (string, error) {
	return obs.Serve(addr, m.registry())
}
