package ann

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func randomPoints(seed int64, n, dim int) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func bruteNN(r, s []Point, k int, excludeSelf bool) [][]float64 {
	out := make([][]float64, len(r))
	for i, p := range r {
		var ds []float64
		for j, q := range s {
			if excludeSelf && i == j {
				continue
			}
			var sum float64
			for d := range p {
				diff := p[d] - q[d]
				sum += diff * diff
			}
			ds = append(ds, math.Sqrt(sum))
		}
		sort.Float64s(ds)
		if k < len(ds) {
			ds = ds[:k]
		}
		out[i] = ds
	}
	return out
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil, IndexConfig{}); err == nil {
		t.Error("expected error for empty dataset")
	}
	if _, err := BuildIndex([]Point{{1, 2}, {1, 2, 3}}, IndexConfig{}); err == nil {
		t.Error("expected error for ragged dataset")
	}
}

func TestAllNearestNeighborsBothKinds(t *testing.T) {
	r := randomPoints(1, 200, 2)
	s := randomPoints(2, 250, 2)
	want := bruteNN(r, s, 1, false)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		ir, err := BuildIndex(r, IndexConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		is, err := BuildIndex(s, IndexConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		results, err := AllNearestNeighbors(ir, is, QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(r) {
			t.Fatalf("%v: got %d results, want %d", kind, len(results), len(r))
		}
		sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
		for i, res := range results {
			if len(res.Neighbors) != 1 {
				t.Fatalf("%v: point %d has %d neighbors", kind, i, len(res.Neighbors))
			}
			if math.Abs(res.Neighbors[0].Dist-want[i][0]) > 1e-9 {
				t.Fatalf("%v: point %d NN dist %g, want %g", kind, i, res.Neighbors[0].Dist, want[i][0])
			}
		}
	}
}

func TestAllKNearestNeighborsBothMetrics(t *testing.T) {
	r := randomPoints(3, 120, 3)
	s := randomPoints(4, 200, 3)
	const k = 4
	want := bruteNN(r, s, k, false)
	for _, metric := range []Metric{NXNDist, MaxMaxDist} {
		ir, _ := BuildIndex(r, IndexConfig{})
		is, _ := BuildIndex(s, IndexConfig{})
		results, err := AllKNearestNeighbors(ir, is, k, QueryConfig{Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
		for i, res := range results {
			for n := range res.Neighbors {
				if math.Abs(res.Neighbors[n].Dist-want[i][n]) > 1e-9 {
					t.Fatalf("metric %d: point %d neighbor %d dist %g, want %g",
						metric, i, n, res.Neighbors[n].Dist, want[i][n])
				}
			}
		}
	}
}

func TestSelfJoin(t *testing.T) {
	pts := randomPoints(5, 150, 2)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := SelfAllNearestNeighbors(ix, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteNN(pts, pts, 1, true)
	sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
	for i, res := range results {
		if res.Neighbors[0].ID == res.ID {
			t.Fatalf("point %d returned itself", i)
		}
		if math.Abs(res.Neighbors[0].Dist-want[i][0]) > 1e-9 {
			t.Fatalf("point %d self-join NN dist %g, want %g", i, res.Neighbors[0].Dist, want[i][0])
		}
	}
}

func TestStreamDeliversAll(t *testing.T) {
	r := randomPoints(6, 80, 2)
	s := randomPoints(7, 90, 2)
	ir, _ := BuildIndex(r, IndexConfig{})
	is, _ := BuildIndex(s, IndexConfig{})
	seen := map[uint64]bool{}
	err := StreamAllKNearestNeighbors(ir, is, 2, QueryConfig{}, func(res Result) error {
		seen[res.ID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 80 {
		t.Fatalf("stream delivered %d results, want 80", len(seen))
	}
}

// TestParallelismConfig pins the public contract of the Parallelism and
// UnorderedEmit knobs: the default (parallel, ordered) run matches the
// forced-serial run exactly, and an unordered run yields the same result
// set modulo order.
func TestParallelismConfig(t *testing.T) {
	pts := randomPoints(20, 1500, 2)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		ix, err := BuildIndex(pts, IndexConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		serial, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		deflt, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(deflt) != len(serial) {
			t.Fatalf("%v: default run returned %d results, serial %d", kind, len(deflt), len(serial))
		}
		for i := range serial {
			if deflt[i].ID != serial[i].ID {
				t.Fatalf("%v: ordered parallel emit order diverges at %d", kind, i)
			}
			for n := range serial[i].Neighbors {
				if deflt[i].Neighbors[n].ID != serial[i].Neighbors[n].ID ||
					deflt[i].Neighbors[n].Dist != serial[i].Neighbors[n].Dist {
					t.Fatalf("%v: neighbor mismatch for object %d", kind, serial[i].ID)
				}
			}
		}
		unordered, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{Parallelism: 4, UnorderedEmit: true})
		if err != nil {
			t.Fatal(err)
		}
		byID := append([]Result(nil), serial...)
		sort.Slice(byID, func(a, b int) bool { return byID[a].ID < byID[b].ID })
		sort.Slice(unordered, func(a, b int) bool { return unordered[a].ID < unordered[b].ID })
		for i := range byID {
			if unordered[i].ID != byID[i].ID ||
				unordered[i].Neighbors[0].Dist != byID[i].Neighbors[0].Dist {
				t.Fatalf("%v: unordered result set differs at object %d", kind, byID[i].ID)
			}
		}
	}
}

func TestInvalidK(t *testing.T) {
	pts := randomPoints(8, 10, 2)
	ix, _ := BuildIndex(pts, IndexConfig{})
	if _, err := AllKNearestNeighbors(ix, ix, 0, QueryConfig{}); err == nil {
		t.Error("expected error for k = 0")
	}
}

// TestApproxConfig pins the public approximate-query surface: invalid
// knobs are rejected with the typed ErrInvalidConfig, Epsilon=0 matches
// the exact run exactly, and an ε>0 run keeps every distance within the
// (1+ε) contract of the exact answer at the same rank.
func TestApproxConfig(t *testing.T) {
	pts := randomPoints(21, 600, 3)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []QueryConfig{
		{Epsilon: -0.1},
		{Epsilon: math.NaN()},
		{RecallTarget: 2},
	} {
		if _, err := SelfAllKNearestNeighbors(ix, 1, cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("config %+v: got %v, want ErrInvalidConfig", cfg, err)
		}
	}

	exact, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, exact) {
		t.Error("Epsilon=0 run diverges from exact run")
	}

	const eps = 0.25
	approx, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(approx, func(a, b int) bool { return approx[a].ID < approx[b].ID })
	sort.Slice(exact, func(a, b int) bool { return exact[a].ID < exact[b].ID })
	for i := range exact {
		if len(approx[i].Neighbors) != len(exact[i].Neighbors) {
			t.Fatalf("object %d: approx returned %d neighbors, exact %d",
				exact[i].ID, len(approx[i].Neighbors), len(exact[i].Neighbors))
		}
		for n := range exact[i].Neighbors {
			if approx[i].Neighbors[n].Dist > exact[i].Neighbors[n].Dist*(1+eps)*(1+1e-9) {
				t.Fatalf("object %d rank %d: approx dist %g breaks (1+ε) vs exact %g",
					exact[i].ID, n, approx[i].Neighbors[n].Dist, exact[i].Neighbors[n].Dist)
			}
		}
	}
}

func TestIndexQueries(t *testing.T) {
	pts := []Point{{0, 0}, {5, 5}, {10, 10}}
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 || ix.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", ix.Len(), ix.Dim())
	}
	nn, err := ix.NearestNeighbors(Point{6, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].ID != 1 {
		t.Fatalf("NearestNeighbors = %+v", nn)
	}
	ids, err := ix.RangeSearch(Point{4, 4}, Point{11, 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("RangeSearch found %d, want 2", len(ids))
	}
}

func TestFileBackedIndex(t *testing.T) {
	pts := randomPoints(9, 300, 2)
	path := filepath.Join(t.TempDir(), "index.pages")
	ix, err := BuildIndex(pts, IndexConfig{PageFile: path, BufferPoolBytes: 512 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := SelfAllNearestNeighbors(ix, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 300 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestWithinDistance(t *testing.T) {
	pts := randomPoints(11, 120, 2)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const d = 8.0
	got := map[[2]uint64]bool{}
	err = WithinDistance(ix, ix, d, true, func(r, s uint64, dist float64) error {
		if dist > d {
			t.Fatalf("pair (%d,%d) at dist %g beyond %g", r, s, dist, d)
		}
		got[[2]uint64{r, s}] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			var sum float64
			for k := range pts[i] {
				diff := pts[i][k] - pts[j][k]
				sum += diff * diff
			}
			if math.Sqrt(sum) <= d {
				want++
				if !got[[2]uint64{uint64(i), uint64(j)}] {
					t.Fatalf("missing pair (%d,%d)", i, j)
				}
			}
		}
	}
	if len(got) != want {
		t.Fatalf("join found %d pairs, want %d", len(got), want)
	}
}

func TestClosestPairs(t *testing.T) {
	pts := randomPoints(13, 100, 2)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ClosestPairs(ix, ix, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// Brute-force the closest pair distance.
	best := math.Inf(1)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			var sum float64
			for d := range pts[i] {
				diff := pts[i][d] - pts[j][d]
				sum += diff * diff
			}
			if v := math.Sqrt(sum); v < best {
				best = v
			}
		}
	}
	if math.Abs(pairs[0].Dist-best) > 1e-9 {
		t.Fatalf("closest pair dist %g, want %g", pairs[0].Dist, best)
	}
	if !sort.SliceIsSorted(pairs, func(a, b int) bool { return pairs[a].Dist < pairs[b].Dist }) {
		t.Fatal("pairs not sorted")
	}
}
