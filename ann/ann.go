// Package ann is the public API of the library: efficient
// All-Nearest-Neighbor (ANN) and All-k-Nearest-Neighbor (AkNN) queries
// over multi-dimensional point datasets, implementing Chen & Patel,
// "Efficient Evaluation of All-Nearest-Neighbor Queries" (ICDE 2007).
//
// The typical flow is: build an Index over each dataset, then run
// AllNearestNeighbors (or AllKNearestNeighbors) across the two indexes.
// For self-joins ("for every point, its nearest other point"), build one
// index and use the Self variants.
//
//	r, _ := ann.BuildIndex(queryPoints, ann.IndexConfig{})
//	s, _ := ann.BuildIndex(targetPoints, ann.IndexConfig{})
//	results, _ := ann.AllNearestNeighbors(r, s, ann.QueryConfig{})
//
// Indexes default to the paper's MBRQT (an MBR-enhanced bucket PR
// quadtree); an R*-tree backend is available through IndexConfig.Kind.
// Queries default to the paper's NXNDIST pruning metric; the traditional
// MAXMAXDIST is available through QueryConfig for comparison.
//
// Queries run in parallel by default: independent subtrees of the query
// index are drained by a pool of worker goroutines (one per CPU unless
// QueryConfig.Parallelism says otherwise) over the shared, concurrency-
// safe buffer pool, and results are released in index traversal order so
// output is identical to a serial run. Set QueryConfig.Parallelism to 1
// for the paper's single-threaded engine, or QueryConfig.UnorderedEmit
// for the fastest streaming mode when result order does not matter.
package ann

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"allnn/internal/core"
	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/obs"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// Point is a point in D-dimensional space. All points of a dataset must
// share the same length.
type Point = []float64

// ObjectID identifies a point within its dataset; BuildIndex assigns
// sequential ids (the position in the input slice).
type ObjectID = uint64

// IndexKind selects the index structure backing an Index.
type IndexKind int

const (
	// MBRQT is the paper's MBR-enhanced bucket PR quadtree (default;
	// fastest for ANN workloads).
	MBRQT IndexKind = iota
	// RStar is a classic R*-tree. ANN over R*-trees is the paper's RBA
	// configuration, provided mainly for comparison.
	RStar
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	if k == RStar {
		return "R*-tree"
	}
	return "MBRQT"
}

// Metric selects the ANN pruning metric.
type Metric int

const (
	// NXNDist is the paper's tight pruning bound (default).
	NXNDist Metric = iota
	// MaxMaxDist is the traditional loose bound; expect large slowdowns.
	MaxMaxDist
)

// IndexConfig configures BuildIndex. The zero value is ready to use.
type IndexConfig struct {
	// Kind selects the index structure (default MBRQT).
	Kind IndexKind
	// BufferPoolBytes bounds the buffer pool caching the index pages
	// (default 64 MB; the disk-resident pages live in memory unless
	// PageFile is set).
	BufferPoolBytes int
	// PageFile, when non-empty, stores the index pages in a file at this
	// path instead of in memory.
	PageFile string
	// ReadRetries is the number of times a transient page-read failure is
	// retried (with jittered exponential backoff) before it surfaces from
	// a query. 0 selects the default (3); negative disables retries.
	// Corrupt pages — checksum or structural verification failures,
	// ErrCorruptPage — are never retried.
	ReadRetries int
	// RetryBackoff is the base delay before the first read retry; each
	// further retry doubles it up to RetryBackoffMax. Zero values select
	// the defaults (200µs base, 5ms cap).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// CheckpointEveryBytes, when positive, auto-checkpoints a file-backed
	// live index once the write-ahead log exceeds this many bytes: the
	// mutation batch that pushes the log past the budget triggers the
	// same checkpoint Flush runs (pages synced, log truncated) before
	// returning. This bounds both the log's disk footprint and the replay
	// work a crash incurs. 0 (the default) keeps checkpoint cadence
	// manual — Flush, Close, and recovery still checkpoint as before.
	CheckpointEveryBytes int64
}

// Error classification re-exported from the storage layer, so callers
// can tell permanently damaged data from transient device trouble with
// errors.Is on any error a query or index build surfaces:
//
//   - ErrCorruptPage: a page failed its checksum, header or structural
//     verification. Retrying cannot help; the index needs a rebuild.
//   - ErrTransientIO: an I/O operation failed in a retryable way and the
//     configured retries (IndexConfig.ReadRetries) were exhausted.
var (
	ErrCorruptPage = storage.ErrCorruptPage
	ErrTransientIO = storage.ErrTransientIO
)

// ErrInvalidConfig is wrapped by every query-configuration validation
// failure (negative Epsilon, RecallTarget outside (0,1], approximation
// knobs passed to exact-only operations), so callers — and the serving
// layer — can classify bad requests with errors.Is.
var ErrInvalidConfig = core.ErrInvalidOptions

// QueryConfig configures the ANN/AkNN execution.
type QueryConfig struct {
	// Metric selects the pruning bound (default NXNDist).
	Metric Metric
	// Parallelism is the number of worker goroutines draining independent
	// subtrees of the query index concurrently: 0 (the default) uses
	// runtime.GOMAXPROCS(0), 1 forces the single-threaded engine, and any
	// higher value runs that many workers. Workers share the index buffer
	// pool, which is safe for concurrent readers. Results are the same at
	// every setting; see UnorderedEmit for ordering.
	Parallelism int
	// UnorderedEmit lets a parallel execution emit each result as soon as
	// its worker produces it, in scheduling-dependent order — the fastest
	// mode. By default parallel results are released in index traversal
	// order, byte-identical to the serial engine's output. Ignored when
	// the execution is serial (serial output is always in traversal
	// order).
	UnorderedEmit bool
	// NodeCacheBytes bounds the decoded-node cache each index keeps above
	// its buffer pool: decoded node entry slices are shared across the
	// repeated expansions of ANN traversal instead of being re-parsed
	// from page bytes. 0 (the default) uses a 32 MiB budget per index; a
	// positive value sets the budget in bytes; a negative value disables
	// the cache so every expansion decodes from the pool. The cache only
	// changes speed, never results.
	NodeCacheBytes int64
	// TraceOut, when non-nil, receives the query's execution trace as
	// Chrome trace-event JSON when the query completes — open it at
	// https://ui.perfetto.dev. Spans cover the setup/seed/traversal
	// phases, every Expand/Filter/Gather stage, parallel worker and
	// subtree lifetimes, buffer-pool reads and node-cache fetches.
	// Tracing costs a few timestamps per index node; nil (the default)
	// costs nothing.
	TraceOut io.Writer
	// Metrics, when non-nil, accumulates this query's counters, the live
	// pool/cache state and the query-latency histogram into the shared
	// registry (see MetricsRegistry).
	Metrics *MetricsRegistry
	// OnReport, when non-nil, is called once after the query with the
	// unified QueryReport (counters + timings) for this run.
	OnReport func(QueryReport)
	// Epsilon enables (1+ε)-approximate queries: every returned neighbor
	// distance is guaranteed within (1+Epsilon) of the true k-th nearest
	// distance, in exchange for fewer node expansions and distance
	// computations. 0 (the default) is exact — and byte-identical to an
	// exact run, not merely equal. Negative or non-finite values are
	// rejected with ErrInvalidConfig. See DESIGN.md §14 for where the
	// factor enters the pruning bounds.
	Epsilon float64
	// RecallTarget, in (0,1), makes each leaf-level join serve the
	// RecallTarget fraction of its query points with the tightest bounds
	// exactly and let the rest ride along approximately (still receiving
	// full k results), trading the widest points' tail work for bounded
	// recall: measured recall ≥ RecallTarget per leaf when Epsilon is 0.
	// 0 (the default) and 1 disable the selector. Values outside (0,1]
	// are rejected with ErrInvalidConfig. Composes with Epsilon; the
	// bench's approx experiment measures the combinations.
	RecallTarget float64
}

// observed reports whether any observability output is requested.
func (cfg QueryConfig) observed() bool {
	return cfg.TraceOut != nil || cfg.Metrics != nil || cfg.OnReport != nil
}

// Neighbor is one neighbor in a query result.
type Neighbor struct {
	// ID is the neighbor's position in the target dataset.
	ID ObjectID
	// Point is the neighbor's coordinates.
	Point Point
	// Dist is the Euclidean distance from the query point.
	Dist float64
}

// Result lists the neighbors of one query point, ascending by distance.
type Result struct {
	// ID is the query point's position in the query dataset.
	ID ObjectID
	// Point is the query point's coordinates.
	Point Point
	// Neighbors holds the k nearest target points (fewer if the target
	// dataset is smaller).
	Neighbors []Neighbor
}

// Index is a dataset indexed for ANN processing. The query methods and
// the package-level query functions are safe for concurrent use on a
// shared Index (the serving layer multiplexes many clients over one),
// including concurrently with Insert/Delete batches: every query runs
// against the snapshot published by the last completed batch. Close must
// not run concurrently with queries — see internal/server's catalog for
// the lock pattern.
type Index struct {
	tree  index.Tree
	pool  *storage.BufferPool
	store storage.Store
	size  int
	kind  IndexKind

	// Live-update state (write.go). mut is set once enableLiveUpdates
	// arms the mutation path; wal is additionally set for file-backed
	// indexes. writeMu serialises the single-writer mutation path and
	// guards size/writeErr; verMu guards the snapshot version chain.
	mut      mutableTree
	wal      *storage.WAL
	writeMu  sync.Mutex
	writeErr error
	verMu    sync.Mutex
	head     *version
	tail     *version

	// ckptEveryBytes is IndexConfig.CheckpointEveryBytes (0 = manual).
	ckptEveryBytes int64
}

// BuildIndex bulk-loads an index over points. Object ids are the
// positions in the slice.
func BuildIndex(points []Point, cfg IndexConfig) (*Index, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("ann: cannot index an empty dataset")
	}
	dim := len(points[0])
	gp := make([]geom.Point, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("ann: point %d has dimensionality %d, expected %d", i, len(p), dim)
		}
		gp[i] = geom.Point(p)
	}
	poolBytes := cfg.BufferPoolBytes
	if poolBytes <= 0 {
		poolBytes = 64 << 20
	}
	var store storage.Store
	if cfg.PageFile != "" {
		fs, err := storage.NewFileStore(cfg.PageFile)
		if err != nil {
			return nil, err
		}
		store = wrapStore(fs)
	} else {
		store = wrapStore(storage.NewMemStore())
	}
	pool := storage.NewBufferPoolWithConfig(store, storage.FramesForBytes(poolBytes), storage.BufferPoolConfig{
		ReadRetries:     cfg.ReadRetries,
		RetryBackoff:    cfg.RetryBackoff,
		RetryBackoffMax: cfg.RetryBackoffMax,
	})

	var tree index.Tree
	var err error
	switch cfg.Kind {
	case RStar:
		tree, err = rstar.BulkLoad(pool, gp, nil, rstar.Config{})
	default:
		tree, err = mbrqt.BulkLoad(pool, gp, nil, mbrqt.Config{})
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	ix := &Index{tree: tree, pool: pool, store: store, size: len(points), kind: cfg.Kind,
		ckptEveryBytes: cfg.CheckpointEveryBytes}
	var wal *storage.WAL
	if cfg.PageFile != "" {
		wal, err = createWALAt(cfg.PageFile + ".wal")
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	ix.enableLiveUpdates(wal)
	if wal != nil {
		// Checkpoint the bulk-loaded base state right away, so a crash at
		// any later instant recovers at least the full build.
		if err := ix.checkpointLocked(); err != nil {
			wal.Close()
			store.Close()
			return nil, err
		}
	}
	return ix, nil
}

// Close releases the index's storage (removing nothing unless the page
// file was temporary). A file-backed index with updates not yet covered
// by a checkpoint is checkpointed first — a clean shutdown leaves an
// empty log, so the next OpenIndex has nothing to replay. An Index must
// not be used after Close.
func (ix *Index) Close() error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	var firstErr error
	if ix.mut != nil && ix.wal != nil && ix.writeErr == nil && !ix.wal.Empty() {
		if err := ix.checkpointLocked(); err != nil {
			firstErr = err
		}
	}
	if ix.wal != nil {
		if err := ix.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := ix.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Len returns the number of indexed points, as of the last published
// update batch.
func (ix *Index) Len() int {
	v, t := ix.acquire()
	defer ix.release(v)
	return t.Len()
}

// Kind returns the index structure backing this Index.
func (ix *Index) Kind() IndexKind { return ix.kind }

// Dim returns the dimensionality of the indexed points.
func (ix *Index) Dim() int { return ix.tree.Dim() }

// NearestNeighbors returns the k nearest indexed points to q, ascending
// by distance.
func (ix *Index) NearestNeighbors(q Point, k int) ([]Neighbor, error) {
	v, t := ix.acquire()
	defer ix.release(v)
	res, err := index.NearestNeighbors(t, geom.Point(q), k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{ID: uint64(r.Object), Point: Point(r.Point), Dist: math.Sqrt(r.DistSq)}
	}
	return out, nil
}

// RangeSearch returns the ids of all indexed points inside the box
// [lo, hi] (boundaries inclusive).
func (ix *Index) RangeSearch(lo, hi Point) ([]ObjectID, error) {
	v, t := ix.acquire()
	defer ix.release(v)
	res, err := index.RangeSearch(t, geom.NewRect(geom.Point(lo), geom.Point(hi)))
	if err != nil {
		return nil, err
	}
	out := make([]ObjectID, len(res))
	for i, r := range res {
		out[i] = uint64(r.Object)
	}
	return out, nil
}

// RangeSearchWithPoints returns the ids and coordinates of all indexed
// points inside the box [lo, hi] (boundaries inclusive), as parallel
// slices. It backs the wire protocol's OpRangePoints — the
// boundary-strip fetch distributed within-distance queries are built
// on, where the caller needs the coordinates to compute exact
// cross-shard distances locally.
func (ix *Index) RangeSearchWithPoints(lo, hi Point) ([]ObjectID, []Point, error) {
	v, t := ix.acquire()
	defer ix.release(v)
	res, err := index.RangeSearch(t, geom.NewRect(geom.Point(lo), geom.Point(hi)))
	if err != nil {
		return nil, nil, err
	}
	ids := make([]ObjectID, len(res))
	pts := make([]Point, len(res))
	for i, r := range res {
		ids[i] = uint64(r.Object)
		pts[i] = Point(r.Point)
	}
	return ids, pts, nil
}

// AllNearestNeighbors computes, for every point of r, its nearest
// neighbor in s.
func AllNearestNeighbors(r, s *Index, cfg QueryConfig) ([]Result, error) {
	return AllKNearestNeighbors(r, s, 1, cfg)
}

// AllNearestNeighborsContext is AllNearestNeighbors with cancellation:
// when ctx is cancelled or its deadline passes, the query — serial or
// parallel — stops promptly, releases its storage resources, and returns
// ctx.Err() alongside the results produced so far.
func AllNearestNeighborsContext(ctx context.Context, r, s *Index, cfg QueryConfig) ([]Result, error) {
	return AllKNearestNeighborsContext(ctx, r, s, 1, cfg)
}

// AllKNearestNeighbors computes, for every point of r, its k nearest
// neighbors in s.
func AllKNearestNeighbors(r, s *Index, k int, cfg QueryConfig) ([]Result, error) {
	return AllKNearestNeighborsContext(context.Background(), r, s, k, cfg)
}

// AllKNearestNeighborsContext is AllKNearestNeighbors with cancellation
// (see AllNearestNeighborsContext).
func AllKNearestNeighborsContext(ctx context.Context, r, s *Index, k int, cfg QueryConfig) ([]Result, error) {
	var out []Result
	err := StreamAllKNearestNeighborsContext(ctx, r, s, k, cfg, func(res Result) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

// SelfAllNearestNeighbors computes, for every point of ix, its nearest
// *other* point in the same dataset (the self pairing is excluded) — the
// form used by single-linkage clustering and most scientific workloads.
func SelfAllNearestNeighbors(ix *Index, cfg QueryConfig) ([]Result, error) {
	return SelfAllKNearestNeighbors(ix, 1, cfg)
}

// SelfAllNearestNeighborsContext is SelfAllNearestNeighbors with
// cancellation (see AllNearestNeighborsContext).
func SelfAllNearestNeighborsContext(ctx context.Context, ix *Index, cfg QueryConfig) ([]Result, error) {
	return SelfAllKNearestNeighborsContext(ctx, ix, 1, cfg)
}

// SelfAllKNearestNeighbors computes, for every point of ix, its k nearest
// other points in the same dataset.
func SelfAllKNearestNeighbors(ix *Index, k int, cfg QueryConfig) ([]Result, error) {
	return SelfAllKNearestNeighborsContext(context.Background(), ix, k, cfg)
}

// SelfAllKNearestNeighborsContext is SelfAllKNearestNeighbors with
// cancellation (see AllNearestNeighborsContext).
func SelfAllKNearestNeighborsContext(ctx context.Context, ix *Index, k int, cfg QueryConfig) ([]Result, error) {
	var out []Result
	err := run(ctx, ix, ix, k, cfg, true, func(res Result) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

// StreamAllKNearestNeighbors is AllKNearestNeighbors with a streaming
// callback instead of a materialised slice; emit is called once per query
// point, in index traversal order.
func StreamAllKNearestNeighbors(r, s *Index, k int, cfg QueryConfig, emit func(Result) error) error {
	return run(context.Background(), r, s, k, cfg, false, emit)
}

// StreamAllKNearestNeighborsContext is StreamAllKNearestNeighbors with
// cancellation (see AllNearestNeighborsContext); emit is not called again
// after the cancellation is observed.
func StreamAllKNearestNeighborsContext(ctx context.Context, r, s *Index, k int, cfg QueryConfig, emit func(Result) error) error {
	return run(ctx, r, s, k, cfg, false, emit)
}

// StreamSelfAllKNearestNeighborsContext is SelfAllKNearestNeighbors with
// a streaming callback and cancellation — the form the serving layer
// uses so self-join results flow to the client without materialising
// server-side.
func StreamSelfAllKNearestNeighborsContext(ctx context.Context, ix *Index, k int, cfg QueryConfig, emit func(Result) error) error {
	return run(ctx, ix, ix, k, cfg, true, emit)
}

func run(ctx context.Context, r, s *Index, k int, cfg QueryConfig, excludeSelf bool, emit func(Result) error) error {
	if k < 1 {
		return fmt.Errorf("ann: k must be at least 1, got %d", k)
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	opts := core.Options{
		K:              k,
		ExcludeSelf:    excludeSelf,
		Parallelism:    par,
		OrderedEmit:    !cfg.UnorderedEmit,
		NodeCacheBytes: cfg.NodeCacheBytes,
		Epsilon:        cfg.Epsilon,
		RecallTarget:   cfg.RecallTarget,
	}
	if cfg.Metric == MaxMaxDist {
		opts.Metric = core.MaxMaxDist
	}
	// Pin one snapshot per index for the whole query: a self-join must see
	// the SAME snapshot on both sides (a write committing between two
	// acquires would otherwise join across versions), so the r snapshot is
	// reused when r and s are one index.
	rv, rTree := r.acquire()
	defer r.release(rv)
	sTree := rTree
	if s != r {
		var sv *version
		sv, sTree = s.acquire()
		defer s.release(sv)
	}
	coreEmit := func(res core.Result) error {
		out := Result{
			ID:        uint64(res.Object),
			Point:     Point(res.Point),
			Neighbors: make([]Neighbor, len(res.Neighbors)),
		}
		for i, n := range res.Neighbors {
			out.Neighbors[i] = Neighbor{ID: uint64(n.Object), Point: Point(n.Point), Dist: n.Dist}
		}
		return emit(out)
	}
	if !cfg.observed() {
		_, err := core.RunContext(ctx, rTree, sTree, opts, coreEmit)
		return err
	}
	var tracer *obs.Tracer
	if cfg.TraceOut != nil {
		tracer = obs.NewTracer()
	}
	opts.Tracer = tracer
	opts.Registry = cfg.Metrics.registry()
	rep, err := core.RunReportContext(ctx, rTree, sTree, opts, coreEmit)
	if cfg.TraceOut != nil {
		if werr := tracer.WriteJSON(cfg.TraceOut); werr != nil && err == nil {
			err = werr
		}
	}
	if cfg.OnReport != nil {
		cfg.OnReport(rep)
	}
	return err
}

// WithinDistance reports every pair of points (one from r, one from s)
// whose Euclidean distance is at most d — the distance join operation.
// For self-joins pass the same index twice and set excludeSelf.
func WithinDistance(r, s *Index, d float64, excludeSelf bool, emit func(rID, sID ObjectID, dist float64) error) error {
	return WithinDistanceContext(context.Background(), r, s, d, excludeSelf, emit)
}

// WithinDistanceContext is WithinDistance with cancellation: when ctx is
// cancelled or its deadline passes the join stops promptly and returns
// ctx.Err(); emit is not called again after the cancellation is
// observed.
func WithinDistanceContext(ctx context.Context, r, s *Index, d float64, excludeSelf bool, emit func(rID, sID ObjectID, dist float64) error) error {
	rv, rTree := r.acquire()
	defer r.release(rv)
	sTree := rTree
	if s != r {
		var sv *version
		sv, sTree = s.acquire()
		defer s.release(sv)
	}
	_, err := core.DistanceJoinContext(ctx, rTree, sTree, d, excludeSelf, func(p core.Pair) error {
		return emit(uint64(p.R), uint64(p.S), p.Dist)
	})
	return err
}

// Pair is one result of ClosestPairs.
type Pair struct {
	R, S ObjectID
	Dist float64
}

// ClosestPairs returns the k closest (r, s) pairs across the two indexes,
// ascending by distance. For self-joins pass the same index twice and set
// excludeSelf (each unordered pair then appears in both directions).
func ClosestPairs(r, s *Index, k int, excludeSelf bool) ([]Pair, error) {
	return ClosestPairsContext(context.Background(), r, s, k, excludeSelf)
}

// ClosestPairsContext is ClosestPairs with cancellation: when ctx is
// cancelled or its deadline passes the traversal stops promptly and
// returns ctx.Err() with no pairs (a partial top-k would be
// misleading).
func ClosestPairsContext(ctx context.Context, r, s *Index, k int, excludeSelf bool) ([]Pair, error) {
	rv, rTree := r.acquire()
	defer r.release(rv)
	sTree := rTree
	if s != r {
		var sv *version
		sv, sTree = s.acquire()
		defer s.release(sv)
	}
	pairs, _, err := core.KClosestPairsContext(ctx, rTree, sTree, k, excludeSelf)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{R: uint64(p.R), S: uint64(p.S), Dist: p.Dist}
	}
	return out, nil
}
