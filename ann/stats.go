package ann

import (
	"allnn/internal/index"
	"allnn/internal/storage"
)

// IndexStats is a point-in-time snapshot of one index's shape and
// storage activity — the per-index record behind the server's catalog
// stats operation. Pool counters are cumulative since the index was
// built or opened; cache counters cover the attached decoded-node cache
// (zero when none is attached yet).
type IndexStats struct {
	Points int       `json:"points"`
	Dim    int       `json:"dim"`
	Kind   IndexKind `json:"kind"`

	PoolHits         uint64 `json:"pool_hits"`
	PoolMisses       uint64 `json:"pool_misses"`
	PoolReads        uint64 `json:"pool_reads"`
	PoolWrites       uint64 `json:"pool_writes"`
	PoolEvictions    uint64 `json:"pool_evictions"`
	PoolRetries      uint64 `json:"pool_retries"`
	PoolCorruptPages uint64 `json:"pool_corrupt_pages"`
	PinnedFrames     int    `json:"pinned_frames"`

	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheEvictions     uint64 `json:"cache_evictions"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       int    `json:"cache_entries"`
	CacheBytes         int64  `json:"cache_bytes"`
}

// Stats snapshots the index. Safe to call concurrently with queries.
func (ix *Index) Stats() IndexStats {
	ps := ix.pool.Stats()
	st := IndexStats{
		Points: ix.size,
		Dim:    ix.Dim(),
		Kind:   ix.kind,

		PoolHits:         ps.Hits,
		PoolMisses:       ps.Misses,
		PoolReads:        ps.Reads,
		PoolWrites:       ps.Writes,
		PoolEvictions:    ps.Evictions,
		PoolRetries:      ps.Retries,
		PoolCorruptPages: ps.CorruptPages,
		PinnedFrames:     ix.pool.PinnedFrames(),
	}
	if nc, ok := ix.tree.(index.NodeCacher); ok {
		if c := nc.NodeCacheRef(); c != nil {
			ct := c.Counters()
			st.CacheHits = ct.Hits
			st.CacheMisses = ct.Misses
			st.CacheEvictions = ct.Evictions
			st.CacheInvalidations = ct.Invalidations
			r := c.Residency()
			st.CacheEntries = r.Entries
			st.CacheBytes = r.Bytes
		}
	}
	return st
}

// RequireNoPinnedFrames forwards to storage.RequireNoPinnedFrames for
// the index's buffer pool: it fails the test when any frame is still
// pinned after the exercised paths, the leak assertion concurrency and
// chaos tests end with.
func (ix *Index) RequireNoPinnedFrames(t storage.TB) {
	storage.RequireNoPinnedFrames(t, ix.pool)
}
