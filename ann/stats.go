package ann

import (
	"allnn/internal/index"
	"allnn/internal/storage"
)

// IndexStats is a point-in-time snapshot of one index's shape and
// storage activity — the per-index record behind the server's catalog
// stats operation. Pool counters are cumulative since the index was
// built or opened; cache counters cover the attached decoded-node cache
// (zero when none is attached yet).
type IndexStats struct {
	Points int       `json:"points"`
	Dim    int       `json:"dim"`
	Kind   IndexKind `json:"kind"`

	PoolHits         uint64 `json:"pool_hits"`
	PoolMisses       uint64 `json:"pool_misses"`
	PoolReads        uint64 `json:"pool_reads"`
	PoolWrites       uint64 `json:"pool_writes"`
	PoolEvictions    uint64 `json:"pool_evictions"`
	PoolRetries      uint64 `json:"pool_retries"`
	PoolCorruptPages uint64 `json:"pool_corrupt_pages"`
	PinnedFrames     int    `json:"pinned_frames"`

	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheEvictions     uint64 `json:"cache_evictions"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       int    `json:"cache_entries"`
	CacheBytes         int64  `json:"cache_bytes"`

	// Write-ahead-log counters, all zero for an in-memory index (which
	// has no log). SnapshotPins is the number of snapshot references
	// currently held by in-flight queries.
	WALRecords     uint64 `json:"wal_records"`
	WALFsyncs      uint64 `json:"wal_fsyncs"`
	WALCheckpoints uint64 `json:"wal_checkpoints"`
	WALReplayed    uint64 `json:"wal_replayed"`
	WALReplayNs    int64  `json:"wal_replay_ns"`
	SnapshotPins   int64  `json:"snapshot_pins"`
}

// Stats snapshots the index. Safe to call concurrently with queries.
func (ix *Index) Stats() IndexStats {
	ps := ix.pool.Stats()
	st := IndexStats{
		Points: ix.Len(),
		Dim:    ix.Dim(),
		Kind:   ix.kind,

		PoolHits:         ps.Hits,
		PoolMisses:       ps.Misses,
		PoolReads:        ps.Reads,
		PoolWrites:       ps.Writes,
		PoolEvictions:    ps.Evictions,
		PoolRetries:      ps.Retries,
		PoolCorruptPages: ps.CorruptPages,
		PinnedFrames:     ix.pool.PinnedFrames(),
	}
	if ix.wal != nil {
		ws := ix.wal.Stats()
		st.WALRecords = ws.Records
		st.WALFsyncs = ws.Fsyncs
		st.WALCheckpoints = ws.Checkpoints
		st.WALReplayed = ws.Replayed
		st.WALReplayNs = ws.ReplayNs
	}
	if ix.mut != nil {
		st.SnapshotPins = ix.totalPins()
	}
	if nc, ok := ix.tree.(index.NodeCacher); ok {
		if c := nc.NodeCacheRef(); c != nil {
			ct := c.Counters()
			st.CacheHits = ct.Hits
			st.CacheMisses = ct.Misses
			st.CacheEvictions = ct.Evictions
			st.CacheInvalidations = ct.Invalidations
			r := c.Residency()
			st.CacheEntries = r.Entries
			st.CacheBytes = r.Bytes
		}
	}
	return st
}

// RegisterWALMetrics exposes the index's write-ahead-log gauges and
// counters in m under the "wal." prefix: wal.records, wal.fsyncs,
// wal.checkpoints, wal.replayed_records, wal.replay_ns and
// wal.snapshot_pins. No-op for an in-memory index, which has no log.
func (ix *Index) RegisterWALMetrics(m *MetricsRegistry) {
	if ix.wal == nil || m == nil {
		return
	}
	ix.wal.Register(m.registry(), "wal")
}

// RequireNoPinnedFrames forwards to storage.RequireNoPinnedFrames for
// the index's buffer pool: it fails the test when any frame is still
// pinned after the exercised paths, the leak assertion concurrency and
// chaos tests end with.
func (ix *Index) RequireNoPinnedFrames(t storage.TB) {
	storage.RequireNoPinnedFrames(t, ix.pool)
}
