package ann

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"allnn/internal/storage"
)

// TestOpenIndexRoundTrip builds a file-backed index of each kind,
// flushes it, reopens it with OpenIndex, and checks that the reopened
// index answers a self-join identically to the original.
func TestOpenIndexRoundTrip(t *testing.T) {
	pts := randomPoints(31, 400, 2)
	for _, kind := range []IndexKind{MBRQT, RStar} {
		path := filepath.Join(t.TempDir(), "index.pages")
		built, err := BuildIndex(pts, IndexConfig{Kind: kind, PageFile: path, BufferPoolBytes: 512 * 1024})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelfAllKNearestNeighbors(built, 2, QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := built.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := built.Close(); err != nil {
			t.Fatal(err)
		}

		ix, err := OpenIndex(path, IndexConfig{BufferPoolBytes: 512 * 1024})
		if err != nil {
			t.Fatalf("%v: OpenIndex: %v", kind, err)
		}
		if ix.Kind() != kind {
			t.Fatalf("reopened kind = %v, want %v", ix.Kind(), kind)
		}
		if ix.Len() != len(pts) || ix.Dim() != 2 {
			t.Fatalf("%v: reopened Len=%d Dim=%d", kind, ix.Len(), ix.Dim())
		}
		got, err := SelfAllKNearestNeighbors(ix, 2, QueryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: reopened index returned %d results, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("%v: result %d ID %d, want %d", kind, i, got[i].ID, want[i].ID)
			}
			for n := range want[i].Neighbors {
				if got[i].Neighbors[n].ID != want[i].Neighbors[n].ID ||
					math.Abs(got[i].Neighbors[n].Dist-want[i].Neighbors[n].Dist) > 0 {
					t.Fatalf("%v: neighbor mismatch for object %d", kind, want[i].ID)
				}
			}
		}
		ix.RequireNoPinnedFrames(t)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenIndexErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenIndex(filepath.Join(dir, "missing.pages"), IndexConfig{}); err == nil {
		t.Error("expected error opening a missing file")
	}

	// A file full of garbage must fail the page header check.
	garbage := filepath.Join(dir, "garbage.pages")
	buf := make([]byte, storage.PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := os.WriteFile(garbage, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndex(garbage, IndexConfig{}); !errors.Is(err, storage.ErrCorruptPage) {
		t.Errorf("garbage file: got %v, want ErrCorruptPage", err)
	}
}

func TestIndexStats(t *testing.T) {
	pts := randomPoints(37, 500, 2)
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := SelfAllNearestNeighbors(ix, QueryConfig{}); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Points != 500 || st.Dim != 2 || st.Kind != MBRQT {
		t.Fatalf("Stats shape = %+v", st)
	}
	if st.PoolHits == 0 {
		t.Error("expected pool hits after a self-join")
	}
	if st.PinnedFrames != 0 {
		t.Errorf("PinnedFrames = %d after queries finished", st.PinnedFrames)
	}
	// The self-join attaches a decoded-node cache; a warm run records hits.
	if st.CacheHits+st.CacheMisses == 0 {
		t.Error("expected node-cache activity after a self-join")
	}
}
