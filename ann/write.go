package ann

import (
	"fmt"
	"os"

	"allnn/internal/geom"
	"allnn/internal/index"
	"allnn/internal/mbrqt"
	"allnn/internal/rstar"
	"allnn/internal/storage"
)

// This file implements live index updates: durable (WAL-backed)
// Insert/Delete batches with snapshot-isolated queries. The write path
// is single-writer (writeMu); the read path acquires the most recently
// published snapshot and pins it for the duration of the query, so a
// query always sees one consistent tree state no matter how many write
// batches commit while it runs.
//
// Durability protocol (file-backed indexes):
//
//  1. Every mutation is appended to the write-ahead log and fsynced
//     BEFORE it is applied to the tree (group commit: one fsync per
//     batch, however large).
//  2. The tree mutates copy-on-write: pages referenced by the last
//     checkpoint (or by any live snapshot) are never overwritten, so the
//     on-disk base state stays intact between checkpoints.
//  3. A checkpoint flushes and syncs all data pages, appends the new
//     header image to the WAL (fsync), then writes the header page and
//     truncates the WAL.
//  4. Recovery (OpenIndex) restores the last WAL header image if one is
//     present, replays the committed WAL suffix onto the base state, and
//     checkpoints — so a crash at ANY instant loses at most the
//     un-fsynced tail of the log, and a batch whose commit fsync
//     returned is never lost.
//
// ErrWriteFailed classifies lost-durability failures (failed fsync,
// failed log append). A batch that failed BEFORE its commit fsync
// returned is indeterminate: after a crash, recovery may surface a
// committed prefix of it. This is the standard contract of write-ahead
// logging; callers that need exactly-once must deduplicate by object id.

// ErrWriteFailed is re-exported from the storage layer: a write or fsync
// failed, so durability of the affected mutation batch is not
// guaranteed. It is not automatically retried — the index refuses
// further writes until reopened, while queries continue on the last
// published snapshot.
var ErrWriteFailed = storage.ErrWriteFailed

// mutableTree is the shape both tree backends expose for live updates.
type mutableTree interface {
	index.Tree
	Insert(id index.ObjectID, pt geom.Point) error
	Delete(id index.ObjectID, pt geom.Point) (bool, error)
	EnableCoW()
	DrainReclaim() error
	CheckpointWith(hook func(metaPage []byte) error) error
	MetaPage() storage.PageID
}

// treePublish publishes a snapshot of the concrete tree. The returned
// release function retires the records unlinked by the just-published
// batch and must run once the previous snapshot has fully drained.
func treePublish(t index.Tree) (index.Tree, func()) {
	switch tt := t.(type) {
	case *mbrqt.Tree:
		return tt.Publish()
	case *rstar.Tree:
		return tt.Publish()
	}
	return t, func() {}
}

// version is one published snapshot in the index's version chain,
// oldest first. pins counts in-flight queries reading it; release (set
// when the NEXT version is published) retires what that next batch
// freed, and may run only after this version and all older ones have
// drained — which the in-order drain walk guarantees.
type version struct {
	tree    index.Tree
	pins    int64
	release func()
	next    *version
}

// acquire pins the newest published snapshot for a query. Returns a nil
// version (and the raw tree) for an index without live-update support.
func (ix *Index) acquire() (*version, index.Tree) {
	ix.verMu.Lock()
	v := ix.tail
	if v == nil {
		ix.verMu.Unlock()
		return nil, ix.tree
	}
	v.pins++
	ix.verMu.Unlock()
	return v, v.tree
}

// release unpins a snapshot and drains any fully-released versions.
func (ix *Index) release(v *version) {
	if v == nil {
		return
	}
	ix.verMu.Lock()
	v.pins--
	ix.drainLocked()
	ix.verMu.Unlock()
}

// drainLocked retires drained versions oldest-first. A version leaves
// the chain only when it is not the newest and nothing reads it; its
// release then runs, making the records the SUPERSEDING batch freed
// eligible for reclaim (no older reader can hold them anymore).
func (ix *Index) drainLocked() {
	for ix.head != nil && ix.head != ix.tail && ix.head.pins == 0 {
		rel := ix.head.release
		ix.head = ix.head.next
		if rel != nil {
			rel()
		}
	}
}

// publishLocked publishes the current tree state as the newest version.
// Caller holds writeMu.
func (ix *Index) publishLocked() {
	snap, release := treePublish(ix.tree)
	newv := &version{tree: snap}
	ix.verMu.Lock()
	if ix.tail == nil {
		// First publish: no older snapshot can exist, so anything the
		// pre-publish phase (recovery replay) freed retires immediately.
		ix.head, ix.tail = newv, newv
		ix.verMu.Unlock()
		release()
		return
	}
	ix.tail.release = release
	ix.tail.next = newv
	ix.tail = newv
	ix.drainLocked()
	ix.verMu.Unlock()
}

// totalPins sums the pins across the version chain — the number of
// snapshot references currently held by in-flight queries (the
// wal.snapshot_pins gauge).
func (ix *Index) totalPins() int64 {
	ix.verMu.Lock()
	defer ix.verMu.Unlock()
	var n int64
	for v := ix.head; v != nil; v = v.next {
		n += v.pins
	}
	return n
}

// enableLiveUpdates arms the mutation path: CoW mode on the tree, the
// initial published version, and (when wal is non-nil) the durability
// protocol. Called once, before the index is shared.
func (ix *Index) enableLiveUpdates(wal *storage.WAL) {
	mt, ok := ix.tree.(mutableTree)
	if !ok {
		return
	}
	ix.mut = mt
	ix.wal = wal
	mt.EnableCoW()
	ix.publishLocked()
	if wal != nil {
		wal.SetPinsFunc(ix.totalPins)
	}
}

// checkpointLocked runs the full checkpoint protocol: data pages flushed
// and synced, header image appended to the WAL and synced, header page
// written and synced, WAL truncated. Caller holds writeMu, with no
// batch in progress.
func (ix *Index) checkpointLocked() error {
	var hook func([]byte) error
	if ix.wal != nil {
		hook = func(metaPage []byte) error {
			if err := ix.wal.AppendMeta(ix.mut.MetaPage(), metaPage); err != nil {
				return err
			}
			return ix.wal.Sync()
		}
	}
	if err := ix.mut.CheckpointWith(hook); err != nil {
		return err
	}
	if ix.wal != nil {
		return ix.wal.Reset()
	}
	return nil
}

// validateMutation checks a batch before anything is logged: an op that
// passes validation must be applicable, so WAL replay cannot hit a
// rejection the original caller never saw. Failures wrap
// ErrInvalidConfig, which the serving layer classifies as BAD_REQUEST.
func (ix *Index) validateMutation(ids []ObjectID, pts []Point) error {
	if len(ids) != len(pts) {
		return fmt.Errorf("ann: %d ids for %d points: %w", len(ids), len(pts), ErrInvalidConfig)
	}
	if len(ids) == 0 {
		return fmt.Errorf("ann: empty mutation batch: %w", ErrInvalidConfig)
	}
	dim := ix.tree.Dim()
	var space geom.Rect
	if qt, ok := ix.tree.(*mbrqt.Tree); ok {
		space = qt.Space()
	}
	for i, pt := range pts {
		if len(pt) != dim {
			return fmt.Errorf("ann: point %d has dimensionality %d, expected %d: %w", i, len(pt), dim, ErrInvalidConfig)
		}
		if space.Dim() > 0 && !space.Contains(geom.Point(pt)) {
			return fmt.Errorf("ann: point %d (%v) lies outside the index space %v (the PR quadtree's root cell is fixed at build time; rebuild with a larger dataset extent, or use the R*-tree backend for unbounded growth): %w", i, pt, space, ErrInvalidConfig)
		}
	}
	return nil
}

// Insert adds one point to a live index. See InsertBatch.
func (ix *Index) Insert(id ObjectID, pt Point) error {
	return ix.InsertBatch([]ObjectID{id}, []Point{pt})
}

// InsertBatch durably adds a batch of points. The whole batch is
// group-committed with a single WAL fsync before any of it is applied;
// when InsertBatch returns nil the batch will survive any crash.
// Queries started before the batch returns see the previous snapshot;
// queries started after see all of it — never a partial batch. IDs are
// not required to be unique; duplicates are indexed independently.
//
// For an MBRQT index every point must lie inside the index space fixed
// at build time (the PR decomposition's root cell); the R*-tree backend
// has no such constraint.
func (ix *Index) InsertBatch(ids []ObjectID, pts []Point) error {
	if err := ix.validateMutation(ids, pts); err != nil {
		return err
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if err := ix.writableLocked(); err != nil {
		return err
	}
	if err := ix.mut.DrainReclaim(); err != nil {
		return err
	}
	if ix.wal != nil {
		for i := range ids {
			if err := ix.wal.AppendInsert(ids[i], pts[i]); err != nil {
				return err
			}
		}
		if err := ix.wal.Sync(); err != nil {
			return err
		}
	}
	for i := range ids {
		if err := ix.mut.Insert(index.ObjectID(ids[i]), geom.Point(pts[i])); err != nil {
			// The log and the tree have diverged; refuse further writes
			// (recovery on reopen reconciles from the log).
			ix.writeErr = fmt.Errorf("ann: apply failed mid-batch (%v), index needs reopen: %w", err, ErrWriteFailed)
			return ix.writeErr
		}
	}
	ix.size = ix.mut.Len()
	ix.publishLocked()
	return ix.maybeCheckpointLocked()
}

// Delete removes one point from a live index, reporting whether it was
// found. See DeleteBatch.
func (ix *Index) Delete(id ObjectID, pt Point) (bool, error) {
	n, err := ix.DeleteBatch([]ObjectID{id}, []Point{pt})
	return n == 1, err
}

// DeleteBatch durably removes a batch of points (matched by id AND
// coordinates), returning how many were found. Like InsertBatch it
// group-commits the whole batch with one WAL fsync before applying;
// deleting an absent point is a durable no-op, which keeps replay
// idempotent.
func (ix *Index) DeleteBatch(ids []ObjectID, pts []Point) (int, error) {
	if err := ix.validateMutation(ids, pts); err != nil {
		return 0, err
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if err := ix.writableLocked(); err != nil {
		return 0, err
	}
	if err := ix.mut.DrainReclaim(); err != nil {
		return 0, err
	}
	if ix.wal != nil {
		for i := range ids {
			if err := ix.wal.AppendDelete(ids[i], pts[i]); err != nil {
				return 0, err
			}
		}
		if err := ix.wal.Sync(); err != nil {
			return 0, err
		}
	}
	found := 0
	for i := range ids {
		ok, err := ix.mut.Delete(index.ObjectID(ids[i]), geom.Point(pts[i]))
		if err != nil {
			ix.writeErr = fmt.Errorf("ann: apply failed mid-batch (%v), index needs reopen: %w", err, ErrWriteFailed)
			return found, ix.writeErr
		}
		if ok {
			found++
		}
	}
	ix.size = ix.mut.Len()
	ix.publishLocked()
	return found, ix.maybeCheckpointLocked()
}

// maybeCheckpointLocked enforces IndexConfig.CheckpointEveryBytes: when
// the just-committed batch pushed the WAL past the byte budget, the
// regular checkpoint protocol runs before the batch returns, truncating
// the log. Runs after publishLocked, so a checkpoint failure leaves the
// batch durable AND visible — the error reports only that the log could
// not be folded into the base state, and the next batch (or Flush)
// retries. Caller holds writeMu.
func (ix *Index) maybeCheckpointLocked() error {
	if ix.wal == nil || ix.ckptEveryBytes <= 0 || ix.wal.Size() <= ix.ckptEveryBytes {
		return nil
	}
	if err := ix.checkpointLocked(); err != nil {
		return fmt.Errorf("ann: auto-checkpoint after committed batch: %w", err)
	}
	return nil
}

// writableLocked reports whether the index accepts mutations.
func (ix *Index) writableLocked() error {
	if ix.mut == nil {
		return fmt.Errorf("ann: index does not support live updates: %w", ErrInvalidConfig)
	}
	if ix.writeErr != nil {
		return ix.writeErr
	}
	return nil
}

// Test seams: wrap the freshly opened page store / WAL backend with
// fault injectors before the index touches them. Nil outside tests.
var (
	testWrapStore func(storage.Store) storage.Store
	testWrapWAL   func(storage.WALBackend) storage.WALBackend
)

func wrapStore(s storage.Store) storage.Store {
	if testWrapStore != nil {
		return testWrapStore(s)
	}
	return s
}

func wrapWAL(b storage.WALBackend) storage.WALBackend {
	if testWrapWAL != nil {
		return testWrapWAL(b)
	}
	return b
}

// createWALAt creates a fresh (truncated) log at path.
func createWALAt(path string) (*storage.WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ann: create WAL: %w", err)
	}
	w, err := storage.NewWALOn(wrapWAL(storage.OSWALFile{F: f}))
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openWALAt opens the log at path, creating it if absent — an index
// closed cleanly by an older version of this library has no WAL file,
// and gets an empty one (nothing to replay).
func openWALAt(path string) (*storage.WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ann: open WAL: %w", err)
	}
	w, err := storage.NewWALOn(wrapWAL(storage.OSWALFile{F: f}))
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}
